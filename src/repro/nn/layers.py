"""Dense, activation, normalisation, embedding and utility layers."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .initializers import normal_init, xavier_uniform, zeros
from .module import Module
from .parameter import Parameter

__all__ = [
    "Linear",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Flatten",
    "Dropout",
    "Embedding",
    "LayerNorm",
    "SelectLast",
    "MeanOverTime",
]


class Linear(Module):
    """Affine layer ``y = x W + b`` over the last axis of the input.

    Accepts inputs of shape ``(..., in_features)``; leading axes are treated
    as batch axes (so the same layer serves per-token projections in sequence
    models).
    """

    def __init__(self, in_features: int, out_features: int,
                 rng: Optional[np.random.Generator] = None, bias: bool = True,
                 name: str = "linear") -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(xavier_uniform(rng, (in_features, out_features)),
                                name=f"{name}.weight")
        self.bias = Parameter(zeros((out_features,)), name=f"{name}.bias") if bias else None
        self._input: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._input = inputs
        output = inputs @ self.weight.data
        if self.bias is not None:
            output = output + self.bias.data
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before forward")
        inputs = self._input
        flat_in = inputs.reshape(-1, self.in_features)
        flat_grad = grad_output.reshape(-1, self.out_features)
        self.weight.grad += flat_in.T @ flat_grad
        if self.bias is not None:
            self.bias.grad += flat_grad.sum(axis=0)
        return (flat_grad @ self.weight.data.T).reshape(inputs.shape)


class ReLU(Module):
    """Rectified linear activation."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._mask = inputs > 0
        return inputs * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * self._mask


class Tanh(Module):
    def __init__(self) -> None:
        super().__init__()
        self._output: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._output = np.tanh(inputs)
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * (1.0 - self._output ** 2)


class Sigmoid(Module):
    def __init__(self) -> None:
        super().__init__()
        self._output: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._output = 1.0 / (1.0 + np.exp(-inputs))
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * self._output * (1.0 - self._output)


class Flatten(Module):
    """Reshape ``(N, ...)`` to ``(N, -1)``."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: Optional[tuple] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._shape = inputs.shape
        return inputs.reshape(inputs.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output.reshape(self._shape)


class Dropout(Module):
    """Inverted dropout; a no-op in evaluation mode."""

    def __init__(self, p: float = 0.5, seed: int = 0) -> None:
        super().__init__()
        if not 0 <= p < 1:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = np.random.default_rng(seed)
        self._mask: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return inputs
        keep = 1.0 - self.p
        self._mask = (self._rng.random(inputs.shape) < keep) / keep
        return inputs * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask


class Embedding(Module):
    """Token embedding lookup: int ids ``(N, T)`` -> vectors ``(N, T, dim)``."""

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: Optional[np.random.Generator] = None, name: str = "embedding") -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(normal_init(rng, (num_embeddings, embedding_dim), std=0.05),
                                name=f"{name}.weight")
        self._ids: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        ids = np.asarray(inputs, dtype=np.int64)
        if ids.min(initial=0) < 0 or ids.max(initial=0) >= self.num_embeddings:
            raise ValueError("token id out of range of the embedding table")
        self._ids = ids
        return self.weight.data[ids]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        ids = self._ids.reshape(-1)
        grads = grad_output.reshape(-1, self.embedding_dim)
        np.add.at(self.weight.grad, ids, grads)
        # Token ids are not differentiable; return a zero gradient of the id shape.
        return np.zeros(self._ids.shape, dtype=np.float64)


class LayerNorm(Module):
    """Layer normalisation over the last axis."""

    def __init__(self, normalized_dim: int, eps: float = 1e-5, name: str = "ln") -> None:
        super().__init__()
        self.eps = eps
        self.gamma = Parameter(np.ones(normalized_dim), name=f"{name}.gamma")
        self.beta = Parameter(np.zeros(normalized_dim), name=f"{name}.beta")
        self._cache: Optional[tuple] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        mean = inputs.mean(axis=-1, keepdims=True)
        var = inputs.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        normalised = (inputs - mean) * inv_std
        self._cache = (normalised, inv_std)
        return normalised * self.gamma.data + self.beta.data

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        normalised, inv_std = self._cache
        dim = normalised.shape[-1]
        axes = tuple(range(grad_output.ndim - 1))
        self.gamma.grad += (grad_output * normalised).sum(axis=axes)
        self.beta.grad += grad_output.sum(axis=axes)
        grad_norm = grad_output * self.gamma.data
        # Standard layer-norm backward over the last axis.
        grad_input = (grad_norm
                      - grad_norm.mean(axis=-1, keepdims=True)
                      - normalised * (grad_norm * normalised).mean(axis=-1, keepdims=True))
        return grad_input * inv_std


class SelectLast(Module):
    """Select the last timestep of a ``(N, T, D)`` sequence."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: Optional[tuple] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._shape = inputs.shape
        return inputs[:, -1, :]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = np.zeros(self._shape, dtype=np.float64)
        grad[:, -1, :] = grad_output
        return grad


class MeanOverTime(Module):
    """Average a ``(N, T, D)`` sequence over its time axis."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: Optional[tuple] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._shape = inputs.shape
        return inputs.mean(axis=1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        n, t, d = self._shape
        return np.repeat(grad_output[:, None, :], t, axis=1) / t
