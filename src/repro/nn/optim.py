"""Optimisers and learning-rate schedules.

The paper trains every case with synchronous mini-batch SGD (with momentum
for the CNN cases); the trainer applies the same update on every worker's
replica after gradient synchronisation, so the optimiser works on a list of
:class:`~repro.nn.parameter.Parameter` objects and can also consume an
externally supplied flat gradient vector.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .parameter import Parameter, assign_flat_gradients

__all__ = ["SGD", "StepLRSchedule", "ConstantLRSchedule"]


class ConstantLRSchedule:
    """A constant learning rate."""

    def __init__(self, learning_rate: float) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = learning_rate

    def at_epoch(self, epoch: int) -> float:
        return self.learning_rate


class StepLRSchedule:
    """Step decay: multiply the rate by ``gamma`` every ``step_epochs``.

    The paper's Fig. 17 notes the learning rate is reduced at epoch 80; this
    schedule reproduces that behaviour.
    """

    def __init__(self, learning_rate: float, step_epochs: int, gamma: float = 0.1) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if step_epochs <= 0:
            raise ValueError("step_epochs must be positive")
        if not 0 < gamma <= 1:
            raise ValueError("gamma must be in (0, 1]")
        self.learning_rate = learning_rate
        self.step_epochs = step_epochs
        self.gamma = gamma

    def at_epoch(self, epoch: int) -> float:
        return self.learning_rate * (self.gamma ** (epoch // self.step_epochs))


class SGD:
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(self, parameters: Sequence[Parameter], learning_rate: float = 0.1,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0 <= momentum < 1:
            raise ValueError("momentum must be in [0, 1)")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.parameters: List[Parameter] = list(parameters)
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Optional[List[np.ndarray]] = None
        if momentum > 0:
            self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self, flat_gradient: Optional[np.ndarray] = None,
             learning_rate: Optional[float] = None) -> None:
        """Apply one update.

        With ``flat_gradient`` given, the vector is first scattered back into
        the parameters' ``grad`` buffers (this is how the trainer applies the
        synchronised global gradient); otherwise the currently accumulated
        gradients are used.
        """
        if flat_gradient is not None:
            assign_flat_gradients(self.parameters, flat_gradient)
        rate = self.learning_rate if learning_rate is None else learning_rate
        for index, parameter in enumerate(self.parameters):
            gradient = parameter.grad
            if self.weight_decay:
                gradient = gradient + self.weight_decay * parameter.data
            if self._velocity is not None:
                self._velocity[index] = self.momentum * self._velocity[index] + gradient
                gradient = self._velocity[index]
            parameter.data -= rate * gradient
