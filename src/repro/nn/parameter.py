"""Trainable parameters.

A :class:`Parameter` is a named NumPy array with an accumulated gradient of
the same shape.  The distributed trainer flattens all parameters' gradients
into the single dense vector that the communication algorithms synchronise,
so the helpers for flattening and un-flattening live here as well.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "Parameter",
    "parameter_count",
    "flatten_values",
    "flatten_gradients",
    "assign_flat_values",
    "assign_flat_gradients",
]


class Parameter:
    """A trainable array together with its accumulated gradient."""

    def __init__(self, data: np.ndarray, name: str = "") -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)
        self.name = name

    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def copy_from(self, other: "Parameter") -> None:
        """Copy another parameter's values (used to clone model replicas)."""
        if other.data.shape != self.data.shape:
            raise ValueError(
                f"shape mismatch copying parameter {self.name!r}: "
                f"{other.data.shape} vs {self.data.shape}"
            )
        self.data[...] = other.data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(name={self.name!r}, shape={self.data.shape})"


# ---------------------------------------------------------------------------
# flattening helpers
# ---------------------------------------------------------------------------
def parameter_count(parameters: Iterable[Parameter]) -> int:
    """Total number of scalar parameters."""
    return sum(p.size for p in parameters)


def flatten_values(parameters: Sequence[Parameter]) -> np.ndarray:
    """Concatenate all parameter values into one dense vector."""
    if not parameters:
        return np.zeros(0, dtype=np.float64)
    return np.concatenate([p.data.reshape(-1) for p in parameters])


def flatten_gradients(parameters: Sequence[Parameter]) -> np.ndarray:
    """Concatenate all parameter gradients into one dense vector."""
    if not parameters:
        return np.zeros(0, dtype=np.float64)
    return np.concatenate([p.grad.reshape(-1) for p in parameters])


def _assign(parameters: Sequence[Parameter], flat: np.ndarray, attribute: str) -> None:
    flat = np.asarray(flat, dtype=np.float64).reshape(-1)
    expected = parameter_count(parameters)
    if flat.shape[0] != expected:
        raise ValueError(f"flat vector has {flat.shape[0]} elements, expected {expected}")
    offset = 0
    for parameter in parameters:
        chunk = flat[offset:offset + parameter.size].reshape(parameter.shape)
        getattr(parameter, attribute)[...] = chunk
        offset += parameter.size


def assign_flat_values(parameters: Sequence[Parameter], flat: np.ndarray) -> None:
    """Write a flat vector back into the parameters' values."""
    _assign(parameters, flat, "data")


def assign_flat_gradients(parameters: Sequence[Parameter], flat: np.ndarray) -> None:
    """Write a flat vector back into the parameters' gradients."""
    _assign(parameters, flat, "grad")
