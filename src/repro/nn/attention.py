"""Self-attention and Transformer encoder blocks (the BERT-style substrate).

The paper's Case 7 pre-trains BERT on Wikipedia; this module provides a
scaled-down Transformer encoder — multi-head self-attention, a position-wise
feed-forward network and pre-layer-norm residual blocks — sufficient for a
masked-language-modelling workload with the same gradient structure.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .layers import Dropout, LayerNorm, Linear, ReLU
from .module import Module
from .parameter import Parameter
from .initializers import normal_init

__all__ = ["softmax", "MultiHeadSelfAttention", "TransformerEncoderLayer",
           "LearnedPositionalEmbedding"]


def softmax(values: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = values - values.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


class MultiHeadSelfAttention(Module):
    """Scaled dot-product self-attention with ``num_heads`` heads.

    Input and output have shape ``(N, T, model_dim)``.
    """

    def __init__(self, model_dim: int, num_heads: int,
                 rng: Optional[np.random.Generator] = None, name: str = "mha") -> None:
        super().__init__()
        if model_dim % num_heads != 0:
            raise ValueError("model_dim must be divisible by num_heads")
        rng = rng or np.random.default_rng(0)
        self.model_dim = model_dim
        self.num_heads = num_heads
        self.head_dim = model_dim // num_heads
        self.query = Linear(model_dim, model_dim, rng=rng, name=f"{name}.query")
        self.key = Linear(model_dim, model_dim, rng=rng, name=f"{name}.key")
        self.value = Linear(model_dim, model_dim, rng=rng, name=f"{name}.value")
        self.output = Linear(model_dim, model_dim, rng=rng, name=f"{name}.output")
        self._cache: Optional[tuple] = None

    # ------------------------------------------------------------------
    def _split_heads(self, tensor: np.ndarray) -> np.ndarray:
        n, t, _ = tensor.shape
        return tensor.reshape(n, t, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, tensor: np.ndarray) -> np.ndarray:
        n, h, t, d = tensor.shape
        return tensor.transpose(0, 2, 1, 3).reshape(n, t, h * d)

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        queries = self._split_heads(self.query(inputs))
        keys = self._split_heads(self.key(inputs))
        values = self._split_heads(self.value(inputs))

        scale = 1.0 / np.sqrt(self.head_dim)
        scores = np.matmul(queries, keys.transpose(0, 1, 3, 2)) * scale
        attention = softmax(scores, axis=-1)
        context = np.matmul(attention, values)

        merged = self._merge_heads(context)
        self._cache = (queries, keys, values, attention, scale)
        return self.output(merged)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        queries, keys, values, attention, scale = self._cache
        grad_merged = self.output.backward(grad_output)
        n, t, _ = grad_merged.shape
        grad_context = grad_merged.reshape(n, t, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

        grad_attention = np.matmul(grad_context, values.transpose(0, 1, 3, 2))
        grad_values = np.matmul(attention.transpose(0, 1, 3, 2), grad_context)

        # Softmax backward: dS = A * (dA - sum(dA * A))
        weighted = (grad_attention * attention).sum(axis=-1, keepdims=True)
        grad_scores = attention * (grad_attention - weighted)
        grad_scores *= scale

        grad_queries = np.matmul(grad_scores, keys)
        grad_keys = np.matmul(grad_scores.transpose(0, 1, 3, 2), queries)

        grad_input = self.query.backward(self._merge_heads(grad_queries))
        grad_input = grad_input + self.key.backward(self._merge_heads(grad_keys))
        grad_input = grad_input + self.value.backward(self._merge_heads(grad_values))
        return grad_input


class TransformerEncoderLayer(Module):
    """Pre-layer-norm Transformer encoder block.

    ``x + MHA(LN(x))`` followed by ``x + FFN(LN(x))``.
    """

    def __init__(self, model_dim: int, num_heads: int, hidden_dim: Optional[int] = None,
                 dropout: float = 0.0, rng: Optional[np.random.Generator] = None,
                 seed: int = 0, name: str = "encoder") -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        hidden_dim = hidden_dim or 4 * model_dim
        self.norm_attention = LayerNorm(model_dim, name=f"{name}.ln1")
        self.attention = MultiHeadSelfAttention(model_dim, num_heads, rng=rng,
                                                name=f"{name}.mha")
        self.dropout_attention = Dropout(dropout, seed=seed)
        self.norm_ffn = LayerNorm(model_dim, name=f"{name}.ln2")
        self.ffn_in = Linear(model_dim, hidden_dim, rng=rng, name=f"{name}.ffn_in")
        self.ffn_act = ReLU()
        self.ffn_out = Linear(hidden_dim, model_dim, rng=rng, name=f"{name}.ffn_out")
        self.dropout_ffn = Dropout(dropout, seed=seed + 1)

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        attended = self.dropout_attention(self.attention(self.norm_attention(inputs)))
        residual = inputs + attended
        transformed = self.ffn_out(self.ffn_act(self.ffn_in(self.norm_ffn(residual))))
        return residual + self.dropout_ffn(transformed)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_ffn = self.dropout_ffn.backward(grad_output)
        grad_ffn = self.ffn_in.backward(self.ffn_act.backward(self.ffn_out.backward(grad_ffn)))
        grad_residual = grad_output + self.norm_ffn.backward(grad_ffn)

        grad_attention = self.dropout_attention.backward(grad_residual)
        grad_attention = self.attention.backward(grad_attention)
        return grad_residual + self.norm_attention.backward(grad_attention)


class LearnedPositionalEmbedding(Module):
    """Adds a learned position embedding to a ``(N, T, dim)`` sequence."""

    def __init__(self, max_length: int, model_dim: int,
                 rng: Optional[np.random.Generator] = None, name: str = "pos") -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.max_length = max_length
        self.weight = Parameter(normal_init(rng, (max_length, model_dim), std=0.02),
                                name=f"{name}.weight")
        self._steps: Optional[int] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        steps = inputs.shape[1]
        if steps > self.max_length:
            raise ValueError(f"sequence length {steps} exceeds max_length {self.max_length}")
        self._steps = steps
        return inputs + self.weight.data[None, :steps, :]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        self.weight.grad[:self._steps] += grad_output.sum(axis=0)
        return grad_output
