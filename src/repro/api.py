"""One facade for building any synchroniser from a spec string.

Experiments select communication methods the way the paper's figures do —
by short names — but a configuration is more than a name: sparsity, team
count, SAG variant, residual policy, sparsity *schedule* and bucketing all
ride along.  The facade folds all of it into one URL-style spec string::

    spardl?density=0.01&schedule=warmup:5&buckets=layer
    ok-topk?k=500
    gtopk?density=0.01&schedule=adaptive
    dense

Grammar
-------
``name[?key=value[&key=value]...]`` where ``name`` is any method name or
alias (case-insensitive, as in the paper's figures) and the keys are:

========== ===================================================================
``k``       entries selected per worker (mutually exclusive with ``density``)
``density`` selected fraction ``k/n`` (mutually exclusive with ``k``)
``schedule`` sparsity schedule: ``constant`` (default), ``warmup:STEPS`` /
            ``warmup:STEPS:START_DENSITY`` (DGC-style ramp), ``adaptive`` /
            ``adaptive:GAIN`` (nnz-feedback controller)
``teams``   SparDL team count ``d`` (default 1)
``sag``     SparDL Spar-All-Gather mode: ``auto`` / ``rsag`` / ``bsag``
``residuals`` SparDL residual policy: ``global`` / ``partial`` / ``local`` / ``none``
``buckets`` ``flat`` (default), ``layer`` (one bucket per parameter tensor),
            ``size:N`` (SSFusion-style fusion of consecutive tensors up to
            ``N`` elements), or ``auto`` / ``auto:mgwfbp`` / ``auto:asc``
            (plan the fused layout with :mod:`repro.core.fusion`: MG-WFBP
            merge-if-it-keeps-the-critical-path, or ASC alpha-saturation
            coalescing, over an alpha-beta model calibrated from the
            transport — ``auto`` is MG-WFBP); non-flat specs need a
            ``model``, and ``auto`` planning reads the optional
            ``network=`` / ``compute_profile=`` arguments of :func:`make`
``wire``    SparDL SRS wire format: ``packed`` (default) / ``per-block``
``deferred`` SparDL deferred residual accumulation: ``true`` / ``false``
``bits``    wire value quantization (all methods): bits per value in
            ``[1, 32]``; values are quantized QSGD-style with exact error
            feedback, sparse messages bill the ``(1 + bits/32)/2`` COO
            accounting plus one scale element, and dense payloads bill
            ``bits/32`` per value (absent = full precision, the
            pre-quantization pipeline bit for bit).  On non-flat ``buckets``
            modes the value may carry per-bucket overrides:
            ``bits=8,emb:32`` quantizes every bucket at 8 bits except those
            whose name contains ``emb``, which stay at 32 — keeping
            sensitive layers high precision.  Each ``pattern:bits`` item
            matches case-insensitive substrings of the bucket names
            (fused buckets join their tensor names with ``+``); the
            optional leading bare integer is the default for unmatched
            buckets (absent = full precision for them)
``momentum`` DGC momentum correction (Lin et al., ICLR'18): a factor in
            ``(0, 1)`` makes the residual manager accumulate velocity
            ``u = m*u + g`` with momentum-factor masking at the final
            global indices, so delayed coordinates keep their momentum
            history.  Run the trainer with
            ``TrainerConfig.momentum_correction=True`` (momentum-free
            optimizer) so velocity is not applied twice.  Absent = plain
            error feedback, bit for bit
``hybrid``  per-tensor-size dense/sparse policy on bucketed layouts:
            ``hybrid=dense<SIZE`` runs every bucket smaller than ``SIZE``
            elements as an exact full-precision dense All-Reduce and the
            rest with the spec's sparse method (+quantization) — the DGC
            hybrid: small tensors are cheaper dense and are guaranteed
            representation.  Requires a non-flat ``buckets`` mode and a
            sparse method
``backend`` execution backend: ``sim:P`` (deterministic in-process
            simulator) or ``mp:P`` (``P`` real worker processes, see
            :class:`~repro.comm.mp_backend.MultiprocessCluster`); with a
            backend given, :func:`make` builds the transport itself and
            ``cluster`` may be omitted.  ``sim`` / ``mp`` without ``:P``
            are accepted when an explicit ``cluster`` supplies the worker
            count.  Absent = use the ``cluster`` argument as-is.
``trace``   observability level: ``off`` (default; no tracer is constructed
            and every method stays bit-identical to the untraced pipeline),
            ``steps`` (step/stage/epoch spans, membership markers, the
            replayed overlap timeline) or ``comm`` (everything plus
            per-message admission events and per-fault markers).  The
            :class:`~repro.obs.trace.Tracer` is attached to the built
            synchroniser (``sync.tracer``) and installed on its transport;
            see ``docs/observability.md``.
========== ===================================================================

:func:`make` builds a ready synchroniser (a
:class:`~repro.core.bucketed.BucketedSynchronizer` when bucketing is
requested), :func:`make_factory` defers construction until the model is
known (the :class:`~repro.training.trainer.DistributedTrainer` calls the
factory with its cluster and model replica), and :func:`describe` maps any
facade-built synchroniser back to its canonical spec string —
``parse_spec(describe(x))`` round-trips.

The old ``repro.baselines.registry`` interface (``make_synchronizer`` with
keyword arguments, ``SYNCHRONIZER_NAMES``, ``available_methods``) lives
here now and remains importable from the registry module unchanged.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from .comm.transport import Transport, make_transport, parse_backend_spec, transport_spec
from .core.base import GradientSynchronizer
from .core.bucketed import BucketedSynchronizer, fuse_buckets, layer_buckets
from .core.fusion import FUSION_PLANNERS, plan_buckets
from .core.config import SAGMode, SparDLConfig
from .core.residuals import ResidualPolicy
from .core.schedules import parse_schedule
from .core.spardl import SparDLSynchronizer
from .obs import TraceLevel, Tracer, attach_tracer

__all__ = [
    "SYNCHRONIZER_NAMES",
    "SyncSpec",
    "parse_spec",
    "make",
    "make_factory",
    "make_synchronizer",
    "describe",
    "available_methods",
]

#: Canonical method names (as used in the paper's figures).
SYNCHRONIZER_NAMES = ("SparDL", "Ok-Topk", "TopkA", "TopkDSA", "gTopk", "Dense")

_ALIASES: Dict[str, str] = {
    "spardl": "SparDL",
    "ok-topk": "Ok-Topk",
    "oktopk": "Ok-Topk",
    "ok_topk": "Ok-Topk",
    "topka": "TopkA",
    "topk-a": "TopkA",
    "topk_a": "TopkA",
    "topkdsa": "TopkDSA",
    "topk-dsa": "TopkDSA",
    "topk_dsa": "TopkDSA",
    "gtopk": "gTopk",
    "gtop-k": "gTopk",
    "dense": "Dense",
    "allreduce": "Dense",
}

#: Spec token used when canonicalising each method name.
_SPEC_NAMES: Dict[str, str] = {
    "SparDL": "spardl",
    "Ok-Topk": "ok-topk",
    "TopkA": "topka",
    "TopkDSA": "topkdsa",
    "gTopk": "gtopk",
    "Dense": "dense",
}

#: Recognised spec keys, in canonical serialisation order.
_SPEC_KEYS = ("k", "density", "teams", "sag", "residuals", "schedule",
              "buckets", "wire", "deferred", "bits", "momentum", "hybrid",
              "backend", "trace")


def _is_power_of_two(value: int) -> bool:
    return value >= 1 and (value & (value - 1)) == 0


def _validate_bits_value(text: "str | int") -> int:
    try:
        value = int(text)
    except (TypeError, ValueError):
        raise ValueError(
            f"bits must be an integer between 1 and 32, got {text!r}") from None
    if not 1 <= value <= 32:
        raise ValueError("bits must be an integer between 1 and 32")
    return value


def _split_bits(bits: "int | str | None"):
    """Split a ``bits`` value into ``(default, overrides)``.

    ``default`` is the bit width for unmatched buckets (``None`` = full
    precision) and ``overrides`` is an ordered ``[(pattern, bits), ...]``
    list; a pattern applies to every bucket whose (lowercased) name contains
    it.  Plain integers have no overrides; ``"8,emb:32"`` parses to
    ``(8, [("emb", 32)])`` and ``"emb:32"`` to ``(None, [("emb", 32)])``.
    """
    if bits is None:
        return None, []
    if isinstance(bits, int):
        return _validate_bits_value(bits), []
    default: Optional[int] = None
    overrides: List[tuple] = []
    for item in str(bits).split(","):
        item = item.strip()
        if not item:
            raise ValueError(f"empty item in bits={bits!r}")
        if ":" in item:
            pattern, _, width = item.rpartition(":")
            pattern = pattern.strip().lower()
            if not pattern:
                raise ValueError(
                    f"bits override {item!r} needs a bucket-name pattern "
                    "before the colon")
            if pattern in (existing for existing, _ in overrides):
                raise ValueError(f"duplicate bits pattern {pattern!r}")
            overrides.append((pattern, _validate_bits_value(width)))
        else:
            if default is not None:
                raise ValueError(
                    f"bits={bits!r} gives more than one default width")
            if overrides:
                raise ValueError(
                    f"the default width in bits={bits!r} must come before "
                    "the pattern overrides")
            default = _validate_bits_value(item)
    return default, overrides


def _canonical_bits(bits: "int | str | None") -> "int | str | None":
    """Validate a ``bits`` value and return its canonical form (an ``int``
    when there are no per-bucket overrides, else the normalised string)."""
    default, overrides = _split_bits(bits)
    if not overrides:
        return default
    items = ([] if default is None else [str(default)])
    items += [f"{pattern}:{width}" for pattern, width in overrides]
    return ",".join(items)


def _hybrid_threshold(hybrid: Optional[str]) -> Optional[int]:
    """The dense-switch size of a ``hybrid=dense<SIZE`` value (``None``
    when the policy is off)."""
    if hybrid is None:
        return None
    text = str(hybrid).strip().lower()
    prefix, _, size = text.partition("<")
    if prefix != "dense" or not size:
        raise ValueError(
            f"hybrid={hybrid!r} is malformed; expected hybrid=dense<SIZE "
            "(buckets smaller than SIZE elements run dense)")
    threshold = int(size)
    if threshold <= 0:
        raise ValueError("the hybrid dense-switch size must be positive")
    return threshold


@dataclass
class SyncSpec:
    """Parsed form of one spec string (see the module grammar)."""

    method: str
    k: Optional[int] = None
    density: Optional[float] = None
    teams: int = 1
    sag: str = "auto"
    residuals: str = "global"
    schedule: str = "constant"
    buckets: str = "flat"
    wire: str = "packed"
    deferred: bool = False
    #: Wire quantization: ``None`` (full precision), an int in ``[1, 32]``,
    #: or a per-bucket override string like ``"8,emb:32"`` (see the grammar).
    bits: "Optional[int | str]" = None
    #: DGC momentum-correction factor in ``(0, 1)``, or ``None`` (off).
    momentum: Optional[float] = None
    #: Hybrid dense/sparse policy ``"dense<SIZE"``, or ``None`` (off).
    hybrid: Optional[str] = None
    backend: Optional[str] = None
    trace: str = "off"
    #: Extra builder options that are not part of the spec grammar
    #: (e.g. ``sparsify_all_blocks`` for the ablation benchmark).
    extras: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.method not in SYNCHRONIZER_NAMES:
            canonical = _ALIASES.get(str(self.method).strip().lower())
            if canonical is None:
                raise ValueError(
                    f"unknown synchroniser {self.method!r}; expected one of "
                    f"{', '.join(SYNCHRONIZER_NAMES)}")
            self.method = canonical
        if self.k is not None and self.density is not None:
            raise ValueError("give only one of k and density")
        if self.bits is not None:
            if not isinstance(self.bits, (int, str)):
                raise ValueError("bits must be an integer between 1 and 32 "
                                 "or a per-bucket override string")
            self.bits = _canonical_bits(self.bits)
        if self.momentum is not None:
            self.momentum = float(self.momentum)
            if not 0.0 < self.momentum < 1.0:
                raise ValueError("momentum must be in (0, 1)")
        if self.hybrid is not None:
            threshold = _hybrid_threshold(self.hybrid)
            self.hybrid = f"dense<{threshold}"
            if self.method == "Dense":
                raise ValueError(
                    "hybrid=dense<SIZE switches small buckets of a sparse "
                    "method to dense; it does not apply to the dense method")
        if self.backend is not None:
            kind, workers = parse_backend_spec(self.backend)
            self.backend = kind if workers is None else f"{kind}:{workers}"
        self.trace = TraceLevel.coerce(self.trace).name.lower()
        if self.buckets.startswith("auto"):
            planner = _bucket_planner(self.buckets)
            if planner not in FUSION_PLANNERS:
                raise ValueError(
                    f"unknown fusion planner in buckets={self.buckets!r}; expected "
                    f"auto, {', '.join('auto:' + p for p in FUSION_PLANNERS)}")
        # A sparse method without k/density is allowed at parse time (the
        # keyword arguments of make()/make_synchronizer may still supply
        # the target); the builders fail loudly when it is truly missing.

    # ------------------------------------------------------------------
    def canonical(self) -> str:
        """The canonical spec string (non-default keys only, fixed order)."""
        params = []
        if self.k is not None:
            params.append(f"k={self.k}")
        if self.density is not None:
            params.append(f"density={self.density:g}")
        if self.teams != 1:
            params.append(f"teams={self.teams}")
        if self.sag != "auto":
            params.append(f"sag={self.sag}")
        if self.residuals != "global":
            params.append(f"residuals={self.residuals}")
        if self.schedule != "constant":
            params.append(f"schedule={self.schedule}")
        if self.buckets != "flat":
            params.append(f"buckets={self.buckets}")
        if self.wire != "packed":
            params.append(f"wire={self.wire}")
        if self.deferred:
            params.append("deferred=true")
        if self.bits is not None:
            params.append(f"bits={self.bits}")
        if self.momentum is not None:
            params.append(f"momentum={self.momentum:g}")
        if self.hybrid is not None:
            params.append(f"hybrid={self.hybrid}")
        if self.backend is not None:
            params.append(f"backend={self.backend}")
        if self.trace != "off":
            params.append(f"trace={self.trace}")
        name = _SPEC_NAMES[self.method]
        return f"{name}?{'&'.join(params)}" if params else name

    @property
    def is_bucketed(self) -> bool:
        return self.buckets != "flat"


def _bucket_planner(buckets: str) -> str:
    """The planner name behind a ``buckets=auto[:PLANNER]`` value."""
    if buckets == "auto":
        return "mgwfbp"
    return buckets.partition(":")[2]


def _parse_bool(key: str, value: str) -> bool:
    lowered = value.strip().lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    raise ValueError(f"spec key {key!r} expects a boolean, got {value!r}")


def parse_spec(spec: "str | SyncSpec") -> SyncSpec:
    """Parse ``name?key=value&...`` into a :class:`SyncSpec`.

    A ready :class:`SyncSpec` passes through unchanged, so every facade
    entry point accepts both forms.
    """
    if isinstance(spec, SyncSpec):
        return spec
    text = str(spec).strip()
    if not text:
        raise ValueError("empty synchroniser spec")
    name, _, query = text.partition("?")
    options: Dict[str, Any] = {}
    if query:
        for item in query.split("&"):
            if not item:
                continue
            key, separator, value = item.partition("=")
            key = key.strip().lower()
            if not separator or not value:
                raise ValueError(f"malformed spec parameter {item!r} (expected key=value)")
            if key not in _SPEC_KEYS:
                raise ValueError(
                    f"unknown spec key {key!r}; expected one of {', '.join(_SPEC_KEYS)}")
            if key in options:
                raise ValueError(f"duplicate spec key {key!r}")
            if key == "k":
                options[key] = int(value)
            elif key in ("density", "momentum"):
                options[key] = float(value)
            elif key == "teams":
                options[key] = int(value)
            elif key == "bits":
                # Kept as written: a plain integer or a per-bucket override
                # string; SyncSpec canonicalises either form.
                options[key] = value.strip()
            elif key == "deferred":
                options[key] = _parse_bool(key, value)
            else:
                options[key] = value.strip().lower()
    return SyncSpec(method=name, **options)


# ---------------------------------------------------------------------------
# builders
# ---------------------------------------------------------------------------
def _validate_schedule_spec(spec: SyncSpec) -> None:
    """Fail on malformed schedule specs before any construction happens."""
    if spec.method == "Dense":
        if spec.schedule != "constant":
            raise ValueError("Dense has no sparsity knob; schedule= does not apply")
        return
    parse_schedule(spec.schedule, k=spec.k, density=spec.density)


def _build_flat(spec: SyncSpec, cluster: Transport,
                num_elements: int) -> GradientSynchronizer:
    """Build one flat-vector synchroniser for ``num_elements`` gradients."""
    from .baselines.dense import DenseAllReduceSynchronizer
    from .baselines.gtopk import GTopkSynchronizer
    from .baselines.ok_topk import OkTopkSynchronizer
    from .baselines.topk_a import TopkASynchronizer
    from .baselines.topk_dsa import TopkDSASynchronizer

    method = spec.method
    if method == "gTopk" and not _is_power_of_two(cluster.num_workers):
        raise ValueError(
            f"gTopk requires a power-of-two number of workers, got P={cluster.num_workers}: "
            "its recursive-doubling exchange pairs workers rank ^ step, which only covers "
            "every rank when P is a power of two.  Run it at P in {2, 4, 8, ...} or pick "
            "another method (see available_methods)."
        )
    schedule = None if spec.schedule == "constant" else spec.schedule
    if spec.bits is not None and not isinstance(spec.bits, int):
        raise ValueError(
            f"per-bucket bits overrides ({spec.bits!r}) need a non-flat "
            "buckets mode; the patterns match bucket names")
    if method == "Dense":
        return DenseAllReduceSynchronizer(cluster, num_elements,
                                          num_bits=spec.bits,
                                          momentum=spec.momentum)
    if method == "SparDL":
        config = SparDLConfig(
            k=spec.k, density=spec.density, num_teams=spec.teams,
            sag_mode=SAGMode.coerce(spec.sag),
            residual_policy=ResidualPolicy.coerce(spec.residuals),
            wire_format=spec.wire, deferred_residuals=spec.deferred,
            schedule=schedule, num_bits=spec.bits, momentum=spec.momentum,
            **spec.extras,
        )
        return SparDLSynchronizer(cluster, num_elements, config)
    classes = {
        "Ok-Topk": OkTopkSynchronizer,
        "TopkA": TopkASynchronizer,
        "TopkDSA": TopkDSASynchronizer,
        "gTopk": GTopkSynchronizer,
    }
    return classes[method](cluster, num_elements, k=spec.k, density=spec.density,
                           schedule=schedule, num_bits=spec.bits,
                           momentum=spec.momentum)


def _bucket_layout(spec: SyncSpec, model) -> List[tuple]:
    """``(name, size)`` buckets for the requested bucketing mode."""
    if model is None:
        raise ValueError(
            f"buckets={spec.buckets} needs the model: pass model=... (anything with "
            "parameters()) so the bucket layout can be derived from its tensor shapes")
    buckets = layer_buckets(model)
    if spec.buckets == "layer" or spec.buckets.startswith("auto"):
        # auto planning starts from the per-layer layout; the fusion plan
        # itself is computed in make(), which has the transport in hand.
        return buckets
    if spec.buckets.startswith("size:"):
        max_elements = int(spec.buckets.split(":", 1)[1])
        return fuse_buckets(buckets, max_elements)
    raise ValueError(
        f"unknown buckets mode {spec.buckets!r}; expected flat, layer, size:N "
        "or auto[:mgwfbp|:asc]")


def _resolve_backend(parsed: SyncSpec,
                     cluster: Optional[Transport]) -> Transport:
    """The transport a spec runs on.

    With no ``backend=`` key the passed ``cluster`` is used as-is (and
    required).  With one, the key must agree with any passed cluster —
    kind and, when given, worker count — or, when no cluster is passed,
    carry an explicit worker count so the transport can be built here.
    """
    if parsed.backend is None:
        if cluster is None:
            raise ValueError(
                "give cluster=... or a backend=KIND:P spec key so make() "
                "can build the transport itself")
        return cluster
    kind, workers = parse_backend_spec(parsed.backend)
    if cluster is None:
        if workers is None:
            raise ValueError(
                f"backend={parsed.backend} without a cluster needs an explicit "
                f"worker count: use backend={kind}:P or pass cluster=...")
        return make_transport(parsed.backend)
    actual_kind, actual_workers = parse_backend_spec(transport_spec(cluster))
    if kind != actual_kind or (workers is not None and workers != actual_workers):
        raise ValueError(
            f"spec requests backend={parsed.backend} but the passed cluster is "
            f"{transport_spec(cluster)}; drop the backend key or pass a "
            "matching transport")
    return cluster


def make(spec: "str | SyncSpec", cluster: Optional[Transport] = None, *,
         num_elements: Optional[int] = None, model=None,
         network=None, compute_profile=None,
         **overrides) -> GradientSynchronizer:
    """Build a synchroniser from a spec string.

    ``num_elements`` gives the flat gradient length directly; ``model``
    (anything exposing ``parameters()``, e.g. a :class:`repro.nn.Module`)
    derives it — and is required for any non-flat ``buckets`` mode.
    Keyword ``overrides`` replace individual spec keys (same names as the
    grammar).

    ``buckets=auto`` specs plan the fused layout here (see
    :mod:`repro.core.fusion`): the alpha-beta model is calibrated by a
    startup micro-benchmark on the transport — priced by ``network``
    (a :class:`~repro.comm.network.NetworkProfile`, default
    :data:`~repro.comm.network.ETHERNET`) on simulated backends, measured
    wall-clock on real-process ones — and ``compute_profile`` (a
    :class:`~repro.training.timing.ComputeProfile`) supplies the
    per-bucket backward times the planner overlaps communication against.
    Both are ignored by non-``auto`` specs.  The resulting plan is kept on
    the synchroniser as ``fusion_plan``.

    ``cluster`` may be any :class:`~repro.comm.transport.Transport`; with a
    ``backend=KIND:P`` spec key it may be omitted and the transport is
    built here (the synchroniser's ``.cluster`` owns it — ``close()`` it,
    or use it as a context manager, when the backend runs real processes).
    """
    parsed = parse_spec(spec)
    if overrides:
        values = {key: getattr(parsed, key) for key in _SPEC_KEYS}
        values["extras"] = dict(parsed.extras)
        for key, value in overrides.items():
            if key in _SPEC_KEYS:
                values[key] = value
            else:
                values["extras"][key] = value
        parsed = SyncSpec(method=parsed.method, **values)
    _validate_schedule_spec(parsed)
    cluster = _resolve_backend(parsed, cluster)
    default_bits, bits_overrides = _split_bits(parsed.bits)
    dense_below = _hybrid_threshold(parsed.hybrid)
    if not parsed.is_bucketed:
        if bits_overrides:
            raise ValueError(
                f"per-bucket bits overrides ({parsed.bits!r}) need a "
                "non-flat buckets mode (layer, size:N or auto); the "
                "patterns match bucket names")
        if dense_below is not None:
            raise ValueError(
                "hybrid=dense<SIZE is a per-bucket policy; use a non-flat "
                "buckets mode (layer, size:N or auto) so there are bucket "
                "sizes to switch on")

    if parsed.is_bucketed:
        layout = _bucket_layout(parsed, model)
        names = [name for name, _ in layout]
        sizes = [size for _, size in layout]
        flat_spec = dataclasses.replace(parsed, buckets="flat", hybrid=None,
                                        bits=default_bits,
                                        extras=dict(parsed.extras))
        if flat_spec.k is not None:
            # An absolute k is a *global* budget: replicating it into every
            # bucket would multiply the selection by the bucket count, so
            # convert it to the equivalent density, which buckets pro-rata
            # (each bucket still keeps at least one entry).
            flat_spec = dataclasses.replace(
                flat_spec, k=None,
                density=min(1.0, flat_spec.k / float(sum(sizes))))
        plan = None
        if parsed.buckets.startswith("auto"):
            from .comm.network import ETHERNET
            plan = plan_buckets(
                layout,
                planner=_bucket_planner(parsed.buckets),
                method=parsed.method,
                num_workers=cluster.num_workers,
                density=flat_spec.density,
                teams=parsed.teams,
                num_bits=default_bits,
                transport=cluster,
                network=network if network is not None else ETHERNET,
                compute_profile=compute_profile,
            )
            layout = plan.bucket_layout()
            names = [name for name, _ in layout]
            sizes = [size for _, size in layout]

        def bucket_factory(bucket_cluster: Transport, bucket_elements: int,
                           bucket_name: str) -> GradientSynchronizer:
            # Hybrid policy: buckets below the dense switch run an exact
            # full-precision dense All-Reduce (momentum correction, when on,
            # carries over — dense keeps the velocity unmasked, which is
            # exactly naive momentum).  Per-bucket bits overrides match
            # case-insensitive substrings of the bucket name; fused buckets
            # join their tensor names with "+", so a pattern matches the
            # fused bucket when it matches any member tensor.
            if dense_below is not None and bucket_elements < dense_below:
                dense_spec = SyncSpec(method="Dense",
                                      momentum=flat_spec.momentum)
                return _build_flat(dense_spec, bucket_cluster, bucket_elements)
            bits = default_bits
            lowered = bucket_name.lower()
            for pattern, width in bits_overrides:
                if pattern in lowered:
                    bits = width
            bucket_spec = flat_spec
            if bits != flat_spec.bits:
                bucket_spec = dataclasses.replace(
                    flat_spec, bits=bits, extras=dict(flat_spec.extras))
            return _build_flat(bucket_spec, bucket_cluster, bucket_elements)

        synchronizer: GradientSynchronizer = BucketedSynchronizer(
            cluster, sizes,
            factory=bucket_factory,
            bucket_names=names,
            plan=plan,
        )
    else:
        if num_elements is None:
            if model is None:
                raise ValueError("give num_elements=... or model=...")
            num_elements = int(model.num_parameters())
        synchronizer = _build_flat(parsed, cluster, num_elements)
    if parsed.backend is not None or getattr(cluster, "spec_name", "sim") != "sim":
        # Record the *effective* backend (always with its worker count) so
        # describe() round-trips e.g. "spardl?density=0.01&backend=mp:4".
        parsed = dataclasses.replace(parsed, backend=transport_spec(cluster),
                                     extras=dict(parsed.extras))
    if parsed.trace != "off":
        # One tracer per built synchroniser, spanning the inner bucketed
        # sessions and the transport; trace=off constructs nothing.
        attach_tracer(synchronizer, Tracer(parsed.trace))
    synchronizer._spec = parsed.canonical()
    return synchronizer


def make_factory(spec: "str | SyncSpec",
                 **overrides) -> Callable[[Transport, Any], GradientSynchronizer]:
    """A deferred :func:`make`: ``factory(cluster, model)`` builds the
    synchroniser once the model (and hence the gradient layout) is known.

    This is the construction interface of
    :class:`~repro.training.trainer.DistributedTrainer`, which calls the
    factory with its cluster and reference replica — plus, for factories
    like this one that accept them, the trainer's ``network`` and
    ``compute_profile``, so ``buckets=auto`` specs plan their fusion
    against the very setting the run is timed with.  Keywords given here
    win over that trainer-supplied context.
    """
    parsed = parse_spec(spec)  # fail fast on malformed specs

    def factory(cluster: Transport, model, **context) -> GradientSynchronizer:
        return make(parsed, cluster, model=model, **{**context, **overrides})

    factory.spec = parsed.canonical()
    return factory


def describe(target) -> str:
    """The canonical spec string of ``target``.

    Accepts a spec string (canonicalised), a :class:`SyncSpec`, a
    facade-built synchroniser, or a :func:`make_factory` factory.
    ``parse_spec(describe(x))`` round-trips.
    """
    if isinstance(target, (str, SyncSpec)):
        return parse_spec(target).canonical()
    spec = getattr(target, "_spec", None) or getattr(target, "spec", None)
    if isinstance(spec, str):
        return parse_spec(spec).canonical()
    raise ValueError(
        f"cannot describe {type(target).__name__}: only spec strings and facade-built "
        "synchronisers / factories carry a spec")


# ---------------------------------------------------------------------------
# registry-compatible interface
# ---------------------------------------------------------------------------
def available_methods(num_workers: int, include_dense: bool = False) -> List[str]:
    """Method names runnable on a cluster of ``num_workers`` (gTopk requires a
    power-of-two worker count)."""
    methods = ["SparDL", "Ok-Topk", "TopkA", "TopkDSA"]
    if _is_power_of_two(num_workers):
        methods.append("gTopk")
    if include_dense:
        methods.append("Dense")
    return methods


def make_synchronizer(
    name: str,
    cluster: Transport,
    num_elements: int,
    *,
    k: Optional[int] = None,
    density: Optional[float] = None,
    num_teams: int = 1,
    sag_mode: SAGMode | str = SAGMode.AUTO,
    residual_policy: ResidualPolicy | str = ResidualPolicy.GLOBAL,
    sparsify_all_blocks: bool = False,
    schedule: Optional[str] = None,
    num_bits: Optional[int] = None,
    momentum: Optional[float] = None,
) -> GradientSynchronizer:
    """Build a synchroniser by (case-insensitive) method name or spec string.

    The pre-facade factory interface, kept verbatim: ``num_teams``,
    ``sag_mode``, ``residual_policy`` and ``sparsify_all_blocks`` only
    affect SparDL; the baselines use the residual policies of their
    original papers.  ``name`` may also be a full spec string
    (``"spardl?density=0.01&schedule=warmup:5"``); explicit keyword
    arguments override the spec's keys.
    """
    parsed = parse_spec(name)
    overrides: Dict[str, Any] = {}
    if k is not None:
        overrides["k"] = k
    if density is not None:
        overrides["density"] = density
    if num_teams != 1:
        overrides["teams"] = num_teams
    mode = SAGMode.coerce(sag_mode)
    if mode is not SAGMode.AUTO:
        overrides["sag"] = mode.value
    policy = ResidualPolicy.coerce(residual_policy)
    if policy is not ResidualPolicy.GLOBAL:
        overrides["residuals"] = policy.value
    if sparsify_all_blocks:
        overrides["sparsify_all_blocks"] = True
    if schedule is not None:
        overrides["schedule"] = schedule
    if num_bits is not None:
        overrides["bits"] = num_bits
    if momentum is not None:
        overrides["momentum"] = momentum
    return make(parsed, cluster, num_elements=num_elements, **overrides)
