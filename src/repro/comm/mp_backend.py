"""Multiprocess execution backend: workers as real OS processes.

:class:`MultiprocessCluster` implements the
:class:`~repro.comm.transport.Transport` protocol with ``P`` persistent
worker processes connected by a full mesh of OS pipes.  An
:meth:`~MultiprocessCluster.exchange` round physically moves every payload
out of the calling process: the driver ships each message to its *source*
worker, the source worker sends it to the *destination* worker over their
peer pipe (the actual inter-process hop, serialised by pickle exactly as a
socket transport would frame it), and the destination worker hands its
inbox back to the driver.  Payloads therefore round-trip through real IPC
— :class:`~repro.comm.packed.PackedBags`, sparse gradients and nested
array payloads included — and arrive as read-only arrays, the same
discipline :func:`~repro.comm.transport.freeze_payload` enforces on the
simulated backend.

Identical accounting by construction
------------------------------------
Message admission (rank validation, wire pricing, size derivation) and
:class:`~repro.comm.stats.CommStats` recording run in the driver through
the shared :class:`~repro.comm.transport.Transport` base-class code path
*before* any physical transit, so a round is billed bit-identically to
:class:`~repro.comm.cluster.SimulatedCluster` no matter which backend
carries it.  Inboxes are reassembled in submission order (each message
carries its sequence number across the wire), so downstream merge order —
and therefore every floating-point result — matches the simulated
reference exactly.  The cross-backend equivalence gate in
``tests/test_backends.py`` asserts this end to end for SparDL and all five
baselines.

What this backend does *not* model
----------------------------------
Fault injection (message drops/delays, stragglers, membership events) and
heterogeneous network timing are simulation-only: they require the
deterministic, seed-keyed delivery loop of the reference backend.
Installing a fault plan here raises
:class:`~repro.comm.transport.UnsupportedTransportFeature`.  Wire pricers
*are* supported (pricing happens at admission, before transit).

Deadlock containment
--------------------
Every driver-side wait carries a hard timeout (default 120 s).  A worker
that stops replying — a deadlocked exchange, a crashed process — fails the
step with a :class:`RuntimeError` naming the worker instead of hanging the
caller, and the whole cluster is torn down so CI jobs fail fast.

Kernel-path propagation
-----------------------
Workers must exercise the same sparse-kernel path as the parent: the
bootstrap forwards ``REPRO_DISABLE_CKERNELS`` into every worker's
environment *before* it touches :mod:`repro.sparse`, each worker reports
whether the compiled C kernels actually loaded, and a mismatch with the
parent (e.g. a worker that cannot compile what the parent could) aborts
construction loudly rather than letting half the cluster fall back to the
NumPy kernels unnoticed.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import threading
import time
import traceback
from multiprocessing.connection import Connection, wait as connection_wait
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..obs.trace import worker_pid
from .transport import (
    Message,
    Transport,
    TransportCapabilities,
    freeze_payload,
    make_worker_context,
)

__all__ = ["MultiprocessCluster"]

#: Environment variable controlling the compiled-kernel path; forwarded
#: verbatim into every worker process.
_CKERNELS_ENV = "REPRO_DISABLE_CKERNELS"


# ---------------------------------------------------------------------------
# worker process
# ---------------------------------------------------------------------------
def _worker_main(rank: int, seed: int, command: Connection,
                 peers: Dict[int, Connection], bootstrap: Dict[str, Any]) -> None:
    """Entry point of one worker process.

    The worker serves commands from the driver until ``stop``:

    ``("exchange", outgoing, expect)``
        ``outgoing`` is this rank's share of the round, ``[(dst, seq,
        payload), ...]``; ``expect`` is how many messages this rank will
        receive.  Outgoing messages are pushed to the peer pipes by a
        background sender thread (so a full pipe buffer can never deadlock
        the receive loop), incoming ones are drained from whichever peer
        pipe is ready, and the collected ``[(seq, payload), ...]`` inbox is
        returned to the driver.
    ``("run", fn, args)``
        Executes ``fn(context, rank, *args)`` against this worker's
        persistent context (see
        :meth:`~repro.comm.transport.Transport.run_workers`).
    ``("trace", enabled)``
        Toggles worker-side span recording.  While enabled, every
        ``exchange`` and ``run`` is timed on the worker's own
        ``perf_counter`` clock into a local buffer; the reply carries the
        worker's current clock reading so the driver can shift the stream
        onto the tracer's clock.
    ``("trace_drain",)``
        Returns (and clears) the buffered span stream.

    Any exception is reported back as ``("error", ...)`` with the full
    traceback; the driver raises it and tears the cluster down.
    """
    # Kernel-path propagation: align the environment BEFORE repro.sparse is
    # (re-)imported, so a spawn-started worker probes the same kernel path
    # as the parent.  (A fork-started worker inherits the parent's already
    # probed module state; setting the variable is then a no-op.)
    disable = bootstrap.get("disable_ckernels", "")
    if disable:
        os.environ[_CKERNELS_ENV] = disable
    else:
        os.environ.pop(_CKERNELS_ENV, None)
    from ..sparse.vector import compiled_kernels_available

    send_queue: "queue.Queue[Optional[Tuple[int, Any]]]" = queue.Queue()

    def _sender() -> None:
        while True:
            item = send_queue.get()
            if item is None:
                return
            dst, frame = item
            peers[dst].send(frame)

    sender = threading.Thread(target=_sender, daemon=True)
    sender.start()

    context = make_worker_context(rank, seed)
    tracing = False
    trace_events: List[Dict[str, Any]] = []
    command.send(("ready", compiled_kernels_available(), os.getpid()))
    try:
        while True:
            request = command.recv()
            op = request[0]
            try:
                if op == "stop":
                    break
                elif op == "exchange":
                    _, outgoing, expect = request
                    start = time.perf_counter()
                    for dst, seq, payload in outgoing:
                        send_queue.put((dst, (seq, payload)))
                    inbox: List[Tuple[int, Any]] = []
                    pending = list(peers.values())
                    while len(inbox) < expect:
                        for conn in connection_wait(pending):
                            inbox.append(conn.recv())
                            if len(inbox) == expect:
                                break
                    if tracing:
                        trace_events.append(
                            {"name": "exchange", "cat": "worker", "ph": "X",
                             "ts": start, "dur": time.perf_counter() - start,
                             "args": {"sent": len(outgoing),
                                      "received": expect}})
                    command.send(("exchanged", inbox))
                elif op == "run":
                    _, fn, args = request
                    start = time.perf_counter()
                    result = fn(context, rank, *args)
                    if tracing:
                        trace_events.append(
                            {"name": f"run:{getattr(fn, '__name__', 'task')}",
                             "cat": "worker", "ph": "X", "ts": start,
                             "dur": time.perf_counter() - start})
                    command.send(("ran", result))
                elif op == "trace":
                    tracing = bool(request[1])
                    trace_events = []
                    command.send(("traced", time.perf_counter()))
                elif op == "trace_drain":
                    command.send(("trace_drained", trace_events))
                    trace_events = []
                else:  # pragma: no cover - protocol violation
                    raise RuntimeError(f"unknown worker command {op!r}")
            except Exception:  # noqa: BLE001 - forwarded to the driver
                command.send(("error", rank, traceback.format_exc()))
    except (EOFError, OSError):  # pragma: no cover - driver went away
        pass
    finally:
        send_queue.put(None)
        sender.join(timeout=1.0)


class MultiprocessCluster(Transport):
    """``P`` workers as real OS processes, full-mesh pipe interconnect.

    Parameters
    ----------
    num_workers:
        Number of worker processes (ranks ``0..P-1``).
    seed:
        Root of the per-rank ``seed_sequence`` streams handed to
        :meth:`~repro.comm.transport.Transport.run_workers` tasks
        (identical spawns on every backend).
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available (cheap, inherits the parent's kernel state) and ``spawn``
        elsewhere.  Both propagate the kernel path (see module docstring).
    timeout:
        Hard per-wait timeout in seconds for every driver-side receive; a
        worker missing the deadline fails the step and tears the cluster
        down instead of hanging the caller.
    """

    spec_name = "mp"
    capabilities = TransportCapabilities(
        fault_injection=False,
        wire_pricing=True,
        worker_compute=True,
        parallel_workers=True,
        real_processes=True,
    )

    def __init__(self, num_workers: int, *, seed: int = 0,
                 start_method: Optional[str] = None,
                 timeout: float = 120.0) -> None:
        super().__init__(num_workers, seed=seed)
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        self._timeout = float(timeout)
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._mp_context = multiprocessing.get_context(start_method)
        self._processes: List[multiprocessing.Process] = []
        self._commands: List[Connection] = []
        self._closed = False
        self._worker_tracing = False
        # rank -> (driver clock µs, worker perf_counter s) at trace enable;
        # the pair aligns each worker's span stream to the tracer's clock.
        self._trace_anchor: Dict[int, Tuple[float, float]] = {}
        self._start_workers()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _start_workers(self) -> None:
        ctx = self._mp_context
        P = self._num_workers
        # Full mesh of peer pipes: link (i, j) gives end_i to rank i and
        # end_j to rank j.  P is a worker-process count (<= a few dozen),
        # so P*(P-1)/2 pipes is cheap.
        peer_ends: List[Dict[int, Connection]] = [{} for _ in range(P)]
        for i in range(P):
            for j in range(i + 1, P):
                end_i, end_j = ctx.Pipe(duplex=True)
                peer_ends[i][j] = end_i
                peer_ends[j][i] = end_j
        bootstrap = {"disable_ckernels": os.environ.get(_CKERNELS_ENV, "")}
        self._processes = []
        self._commands = []
        for rank in range(P):
            parent_end, worker_end = ctx.Pipe(duplex=True)
            process = ctx.Process(
                target=_worker_main,
                args=(rank, self._seed, worker_end, peer_ends[rank], bootstrap),
                name=f"repro-mp-worker-{rank}",
                daemon=True,
            )
            process.start()
            worker_end.close()
            for peer in peer_ends[rank].values():
                peer.close()
            self._processes.append(process)
            self._commands.append(parent_end)
        self._closed = False
        # Bootstrap handshake: every worker reports its kernel path; a
        # mismatch with the parent would silently split the cluster across
        # kernel implementations, so it aborts construction instead.
        from ..sparse.vector import compiled_kernels_available
        parent_kernels = compiled_kernels_available()
        for rank in range(P):
            reply = self._receive(rank, "ready")
            worker_kernels = reply[1]
            if worker_kernels != parent_kernels:
                self.close()
                raise RuntimeError(
                    f"worker {rank} loaded "
                    f"{'compiled' if worker_kernels else 'NumPy-fallback'} "
                    f"sparse kernels but the parent runs "
                    f"{'compiled' if parent_kernels else 'NumPy-fallback'} "
                    f"ones; the {_CKERNELS_ENV} environment and compiler "
                    "availability must agree between parent and workers")

    def close(self) -> None:
        """Stop the worker processes and close every pipe (idempotent).

        With a tracer installed, the per-rank span streams are drained and
        merged into it first — this is where the workers' trace buffers
        become part of the single exported timeline.
        """
        if self._closed:
            return
        if self._worker_tracing:
            # Flag off first: a failing drain receive ends up back in
            # close(), which must not recurse into another drain.
            self._worker_tracing = False
            try:
                self._drain_worker_traces()
            except Exception:  # pragma: no cover - best-effort teardown
                pass
        self._closed = True
        for connection in self._commands:
            try:
                connection.send(("stop",))
            except (OSError, ValueError, BrokenPipeError):
                pass
        for process in self._processes:
            process.join(timeout=5.0)
        for process in self._processes:
            if process.is_alive():  # pragma: no cover - unresponsive worker
                process.terminate()
                process.join(timeout=5.0)
        for connection in self._commands:
            try:
                connection.close()
            except OSError:  # pragma: no cover - already closed
                pass
        self._commands = []
        self._processes = []

    def __del__(self) -> None:  # pragma: no cover - GC-timing dependent
        try:
            self.close()
        except Exception:
            pass

    def resize(self, num_workers: int) -> None:
        """Adopt a new worker count by restarting the worker pool.

        The processes are respawned for the new membership (per-rank
        contexts restart, exactly like the per-rank contexts of the
        simulated backend) and the statistics window resets to the new
        worker count.
        """
        self.close()
        super().resize(num_workers)
        self._start_workers()
        if self._tracer is not None:
            self._set_worker_tracing(True)

    # ------------------------------------------------------------------
    # tracing: per-rank worker streams
    # ------------------------------------------------------------------
    def install_tracer(self, tracer: Optional[Any]) -> Optional[Any]:
        """Install a tracer and toggle worker-side span recording.

        In addition to the base-class admission events, every worker starts
        timing its ``exchange``/``run`` handling on its own clock; the
        streams are pulled back (and aligned to the tracer's clock via the
        enable-time anchor) by :meth:`collect_traces` — registered as a
        tracer collector, so any export sees them — and finally at
        :meth:`close`.
        """
        previous = super().install_tracer(tracer)
        active = self._tracer
        if active is previous:
            return previous
        if self._closed:
            return previous
        if self._worker_tracing and active is None:
            self._set_worker_tracing(False)
        if active is not None:
            self._set_worker_tracing(True)
            active.add_collector(self.collect_traces)
        return previous

    def collect_traces(self) -> None:
        """Merge the workers' pending span streams into the tracer (no-op
        when tracing is off or the cluster is closed)."""
        if not self._closed and self._worker_tracing:
            self._drain_worker_traces()

    def _set_worker_tracing(self, enabled: bool) -> None:
        tracer = self._tracer
        self._trace_anchor = {}
        for connection in self._commands:
            connection.send(("trace", enabled))
        for rank in range(self._num_workers):
            reply = self._receive(rank, "traced")
            if enabled and tracer is not None:
                self._trace_anchor[rank] = (tracer.now_us(), float(reply[1]))
        self._worker_tracing = enabled

    def _drain_worker_traces(self) -> None:
        """Best-effort drain of every worker's span buffer into the tracer.

        Deliberately avoids :meth:`_receive`: draining runs during teardown
        too, where a dead worker must degrade to a missing stream, not to
        recursive cluster shutdown.  Workers clear their buffer on drain,
        so repeated collection never duplicates events.
        """
        tracer = self._tracer
        if tracer is None or not self._trace_anchor:
            return
        deadline = min(self._timeout, 5.0)
        for rank in sorted(self._trace_anchor):
            if rank >= len(self._commands):
                break
            driver_us, worker_t = self._trace_anchor[rank]
            connection = self._commands[rank]
            try:
                connection.send(("trace_drain",))
                if not connection.poll(deadline):
                    continue
                reply = connection.recv()
            except (OSError, EOFError, BrokenPipeError, ValueError):
                continue
            if not reply or reply[0] != "trace_drained":
                continue
            shifted = [dict(event,
                            ts=(event["ts"] - worker_t) * 1e6 + driver_us,
                            dur=event.get("dur", 0.0) * 1e6)
                       for event in reply[1]]
            tracer.merge_stream(worker_pid(rank), shifted,
                                name=f"mp worker {rank}")

    # ------------------------------------------------------------------
    # message passing
    # ------------------------------------------------------------------
    def exchange(self, messages: Sequence[Message]) -> Dict[int, List[Message]]:
        """Deliver one synchronous round through the worker processes.

        Admission and accounting are the shared
        :class:`~repro.comm.transport.Transport` code path (bit-identical
        billing to the simulated backend); the payloads then physically
        transit driver → source worker → destination worker → driver.  The
        returned inboxes hold the *round-tripped* payloads, frozen
        read-only, in submission order.
        """
        self._ensure_open()
        admitted = [self._admit(message) for message in messages]
        if not admitted:
            return {}
        self._stats.record_round(
            [(m.src, m.dst, float(m.size)) for m in admitted])
        outgoing: Dict[int, List[Tuple[int, int, Any]]] = {}
        expected: Dict[int, int] = {}
        for seq, message in enumerate(admitted):
            outgoing.setdefault(message.src, []).append(
                (message.dst, seq, message.payload))
            expected[message.dst] = expected.get(message.dst, 0) + 1
        involved = sorted(set(outgoing) | set(expected))
        for rank in involved:
            self._commands[rank].send(
                ("exchange", outgoing.get(rank, []), expected.get(rank, 0)))
        transited: Dict[int, Any] = {}
        for rank in involved:
            for seq, payload in self._receive(rank, "exchanged")[1]:
                transited[seq] = payload
        inboxes: Dict[int, List[Message]] = {}
        for seq, message in enumerate(admitted):
            delivered = Message(
                src=message.src, dst=message.dst,
                payload=freeze_payload(transited[seq]),
                size=message.size, tag=message.tag,
                size_final=message.size_final, lossy=message.lossy)
            inboxes.setdefault(message.dst, []).append(delivered)
        return inboxes

    # ------------------------------------------------------------------
    # per-rank task execution
    # ------------------------------------------------------------------
    def run_workers(self, fn: Callable[..., Any],
                    args_by_rank: Optional[Mapping[int, tuple]] = None
                    ) -> Dict[int, Any]:
        """Execute ``fn(context, rank, *args)`` concurrently, one call per
        worker process.

        Semantics match the in-process reference implementation
        (:meth:`Transport.run_workers <repro.comm.transport.Transport.run_workers>`):
        persistent per-rank context with the same ``seed_sequence`` spawns,
        results keyed by rank.  ``fn`` and its arguments cross a process
        boundary, so they must be picklable (``fn`` a module-level
        function) and, because ranks genuinely run in parallel here, tasks
        must be rank-order independent.
        """
        self._ensure_open()
        if args_by_rank is None:
            targets = [(rank, ()) for rank in self.ranks]
        else:
            targets = [(rank, tuple(args_by_rank[rank]))
                       for rank in sorted(args_by_rank)]
        for rank, args in targets:
            self._check_rank(rank)
            self._commands[rank].send(("run", fn, args))
        return {rank: self._receive(rank, "ran")[1] for rank, _ in targets}

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError(
                "MultiprocessCluster is closed; its worker processes have "
                "been stopped")

    def _receive(self, rank: int, expected_op: str) -> tuple:
        """One driver-side receive with deadlock containment: a worker that
        misses the timeout (or died, or reported an error) fails the call
        and tears the whole cluster down so nothing upstream hangs."""
        connection = self._commands[rank]
        try:
            if not connection.poll(self._timeout):
                self.close()
                raise RuntimeError(
                    f"worker {rank} did not reply within {self._timeout:.0f}s "
                    "(suspected deadlock or dead worker); cluster terminated")
            reply = connection.recv()
        except (EOFError, OSError) as error:
            self.close()
            raise RuntimeError(
                f"worker {rank} terminated unexpectedly: {error!r}") from error
        if reply[0] == "error":
            self.close()
            raise RuntimeError(
                f"worker {reply[1]} raised:\n{reply[2]}")
        if reply[0] != expected_op:  # pragma: no cover - protocol violation
            self.close()
            raise RuntimeError(
                f"worker {rank} replied {reply[0]!r} to a {expected_op!r} "
                "request")
        return reply

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "live"
        return (f"MultiprocessCluster(num_workers={self._num_workers}, "
                f"{state})")
