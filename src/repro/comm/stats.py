"""Communication accounting.

Every message that flows through :class:`repro.comm.cluster.SimulatedCluster`
is recorded here.  The statistics mirror the two quantities of the
alpha-beta cost model used throughout the paper:

* the number of synchronous communication *rounds* (latency term), and
* the *volume* of elements received per worker (bandwidth term).

A "round" corresponds to one call to ``SimulatedCluster.exchange`` — all
messages inside one call are considered to be in flight simultaneously, as
in a synchronous MPI step.  Because distributed training is bulk
synchronous, the time of a round is governed by the busiest receiver; the
:meth:`CommStats.simulated_time` helper therefore sums
``alpha + beta * max_received`` over rounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List

from .network import NetworkProfile

__all__ = ["CommStats"]


@dataclass
class CommStats:
    """Aggregate communication statistics for one or more synchronisations."""

    num_workers: int
    rounds: int = 0
    total_messages: int = 0
    sent_per_worker: List[float] = field(default_factory=list)
    received_per_worker: List[float] = field(default_factory=list)
    per_round_max_received: List[float] = field(default_factory=list)
    #: Per-round received volume of *every* worker (one list per round,
    #: sized by the worker count at recording time).  Feeds the
    #: heterogeneous timing model, which prices a round by the slowest
    #: per-worker critical path instead of the single busiest receiver.
    per_round_received: List[List[float]] = field(default_factory=list)
    #: Fault accounting (all zero on a fault-free cluster): drop events
    #: observed on the wire (including re-drops of retried messages),
    #: messages scheduled for redelivery, messages lost past the retry
    #: budget (lossy senders fold their mass into the residual path),
    #: messages force-delivered over the reliable transport after the
    #: budget, messages that arrived late within the timeout, and the
    #: extra rounds (retries, backoff idling, late arrivals, forced
    #: deliveries) the faults cost beyond the fault-free single round per
    #: exchange.
    dropped_messages: int = 0
    retried_messages: int = 0
    lost_messages: int = 0
    forced_deliveries: int = 0
    delayed_messages: int = 0
    fault_extra_rounds: int = 0

    def __post_init__(self) -> None:
        if self.num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if not self.sent_per_worker:
            self.sent_per_worker = [0.0] * self.num_workers
        if not self.received_per_worker:
            self.received_per_worker = [0.0] * self.num_workers

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_round(self, transfers: Iterable[tuple[int, int, float]]) -> None:
        """Record one synchronous round.

        ``transfers`` is an iterable of ``(src, dst, size_elements)``
        triples.  An empty iterable still counts as a round only if the
        caller explicitly wants that; by convention callers skip the call
        entirely when nothing is exchanged.
        """
        round_received = [0.0] * self.num_workers
        count = 0
        for src, dst, size in transfers:
            self._check_rank(src)
            self._check_rank(dst)
            if size < 0:
                raise ValueError("message size must be non-negative")
            self.sent_per_worker[src] += size
            self.received_per_worker[dst] += size
            round_received[dst] += size
            count += 1
        self.rounds += 1
        self.total_messages += count
        self.per_round_max_received.append(max(round_received) if round_received else 0.0)
        self.per_round_received.append(round_received)

    def merge(self, other: "CommStats") -> None:
        """Fold another stats object (from the same cluster size) into this one."""
        if other.num_workers != self.num_workers:
            raise ValueError("cannot merge stats from clusters of different sizes")
        self.rounds += other.rounds
        self.total_messages += other.total_messages
        for w in range(self.num_workers):
            self.sent_per_worker[w] += other.sent_per_worker[w]
            self.received_per_worker[w] += other.received_per_worker[w]
        self.per_round_max_received.extend(other.per_round_max_received)
        self.per_round_received.extend([list(row) for row in other.per_round_received])
        self.dropped_messages += other.dropped_messages
        self.retried_messages += other.retried_messages
        self.lost_messages += other.lost_messages
        self.forced_deliveries += other.forced_deliveries
        self.delayed_messages += other.delayed_messages
        self.fault_extra_rounds += other.fault_extra_rounds

    def expand(self, num_workers: int) -> None:
        """Grow the per-worker accounting to ``num_workers`` slots.

        Elastic membership changes the cluster size between steps; session
        accumulators expand to the largest worker count seen so stats from
        different memberships can be merged.  Already-recorded per-round
        rows keep the length of the membership they were recorded under.
        """
        if num_workers < self.num_workers:
            raise ValueError("expand can only grow the worker count")
        extra = num_workers - self.num_workers
        self.sent_per_worker.extend([0.0] * extra)
        self.received_per_worker.extend([0.0] * extra)
        self.num_workers = num_workers

    @classmethod
    def merged(cls, num_workers: int, parts: Iterable["CommStats"]) -> "CommStats":
        """Aggregate several stats windows into one (sequential composition).

        Used by the bucketed synchroniser and the session layer: the
        buckets'/steps' rounds add up (they execute back to back in the
        bulk-synchronous model) and the per-round busiest-receiver series
        concatenates, so :meth:`simulated_time` prices the composition
        exactly as the sum of its parts.
        """
        total = cls(num_workers=num_workers)
        for part in parts:
            total.merge(part)
        return total

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def max_received(self) -> float:
        """Largest total volume received by any single worker (the paper's
        bandwidth term ``y``)."""
        return max(self.received_per_worker)

    @property
    def mean_received(self) -> float:
        return sum(self.received_per_worker) / self.num_workers

    @property
    def total_volume(self) -> float:
        """Total number of elements moved across the network."""
        return sum(self.received_per_worker)

    def simulated_time(self, network: NetworkProfile) -> float:
        """Bulk-synchronous time under ``network``: each round costs
        ``alpha`` plus ``beta`` times the busiest receiver of that round."""
        time = network.alpha * self.rounds
        time += network.beta * sum(self.per_round_max_received)
        return time

    def aggregate_time(self, network: NetworkProfile) -> float:
        """Aggregate-form time ``alpha * rounds + beta * max_received``,
        matching the closed-form expressions of Table I."""
        return network.time(self.rounds, self.max_received)

    def copy(self) -> "CommStats":
        return CommStats(
            num_workers=self.num_workers,
            rounds=self.rounds,
            total_messages=self.total_messages,
            sent_per_worker=list(self.sent_per_worker),
            received_per_worker=list(self.received_per_worker),
            per_round_max_received=list(self.per_round_max_received),
            per_round_received=[list(row) for row in self.per_round_received],
            dropped_messages=self.dropped_messages,
            retried_messages=self.retried_messages,
            lost_messages=self.lost_messages,
            forced_deliveries=self.forced_deliveries,
            delayed_messages=self.delayed_messages,
            fault_extra_rounds=self.fault_extra_rounds,
        )

    # ------------------------------------------------------------------
    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.num_workers:
            raise ValueError(f"worker rank {rank} out of range [0, {self.num_workers})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CommStats(P={self.num_workers}, rounds={self.rounds}, "
            f"max_received={self.max_received:.1f}, messages={self.total_messages})"
        )
