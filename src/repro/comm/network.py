"""Network cost model (the classical alpha-beta model).

The paper analyses every communication algorithm with the latency-bandwidth
(alpha-beta) cost model [Hockney 1994]: a communication phase that takes
``x`` synchronous rounds and delivers ``y`` elements to the busiest worker
costs ``x * alpha + y * beta`` seconds.

This module provides :class:`NetworkProfile`, a small immutable description
of a network, plus the two profiles used in the paper's evaluation
(commodity Ethernet for the 14-worker cluster and InfiniBand RDMA for the
5-worker cluster).  Absolute constants are calibrated so that the *relative*
behaviour matches the paper: Ethernet is latency-heavy, RDMA reduces both
terms by more than an order of magnitude.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

__all__ = [
    "NetworkProfile",
    "HeterogeneousNetwork",
    "ETHERNET",
    "RDMA",
    "PERFECT",
]


@dataclass(frozen=True)
class NetworkProfile:
    """An alpha-beta description of a cluster interconnect.

    Parameters
    ----------
    name:
        Human readable identifier used in reports.
    alpha:
        Latency cost of one synchronous communication round, in seconds.
    beta:
        Transfer cost of one element (one 32-bit value or one index), in
        seconds per element.
    """

    name: str
    alpha: float
    beta: float

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.beta < 0:
            raise ValueError("alpha and beta must be non-negative")

    def round_time(self, volume: float) -> float:
        """Time of a single round in which the busiest worker receives
        ``volume`` elements."""
        return self.alpha + self.beta * float(volume)

    def time(self, rounds: float, volume: float) -> float:
        """Total time of ``rounds`` rounds delivering ``volume`` elements to
        the busiest worker overall (aggregate form of the model)."""
        return self.alpha * float(rounds) + self.beta * float(volume)

    def scaled(self, *, alpha_factor: float = 1.0, beta_factor: float = 1.0,
               name: str | None = None) -> "NetworkProfile":
        """Return a new profile with scaled latency and/or bandwidth cost.

        The derived name comes from the *base* profile, so scaling an
        already-scaled profile yields ``"ethernet-scaled"`` again rather
        than accumulating ``-scaled-scaled-...`` suffixes.
        """
        for factor_name, factor in (("alpha_factor", alpha_factor),
                                    ("beta_factor", beta_factor)):
            if not (math.isfinite(factor) and factor >= 0):
                raise ValueError(
                    f"{factor_name} must be finite and non-negative, got {factor!r}")
        base = self.name
        if base.endswith("-scaled"):
            base = base[: -len("-scaled")]
        return NetworkProfile(
            name=name or f"{base}-scaled",
            alpha=self.alpha * alpha_factor,
            beta=self.beta * beta_factor,
        )


@dataclass(frozen=True)
class HeterogeneousNetwork:
    """A cluster whose workers see different alpha-beta costs.

    Where :class:`NetworkProfile` prices every round by the single busiest
    receiver, a heterogeneous network prices a bulk-synchronous round as the
    **maximum over per-worker critical paths**: worker ``w`` finishes its
    round after ``alpha_w + beta_w * received_w`` seconds, and the round —
    being synchronous — ends when the slowest worker does.

    Parameters
    ----------
    default:
        Profile of every worker without an override.
    overrides:
        ``{rank: NetworkProfile}`` for the heterogeneous workers (slow NICs,
        congested ingress links, ...).
    """

    default: NetworkProfile
    overrides: Mapping[int, NetworkProfile] = field(default_factory=dict)

    def profile_for(self, worker: int) -> NetworkProfile:
        return self.overrides.get(worker, self.default)

    def round_time(self, received: Sequence[float],
                   volume_scale: float = 1.0) -> float:
        """Time of one synchronous round given each worker's received
        volume: the slowest per-worker critical path."""
        if len(received) == 0:
            return self.default.alpha
        return max(
            self.profile_for(worker).alpha
            + self.profile_for(worker).beta * volume_scale * float(volume)
            for worker, volume in enumerate(received)
        )


#: Commodity 10GbE-class network with MPI software overheads; the default
#: profile for the paper's 14-worker cluster experiments.  The constants are
#: calibrated so that a ~20M-parameter model at k/n = 1% reproduces the
#: relative per-update times of the paper's Fig. 8 (latency a couple of
#: milliseconds per round, a few tens of nanoseconds per transferred element).
ETHERNET = NetworkProfile(name="ethernet", alpha=2.0e-3, beta=3.0e-8)

#: InfiniBand network with RDMA transfers; used for the paper's Section IV-J
#: experiments (5 workers, A800 GPUs).
RDMA = NetworkProfile(name="rdma", alpha=5.0e-5, beta=2.0e-9)

#: An idealised network where communication is free.  Useful in tests to
#: isolate algorithmic behaviour from the cost model.
PERFECT = NetworkProfile(name="perfect", alpha=0.0, beta=0.0)
