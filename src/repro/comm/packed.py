"""Batched wire format for sparse COO payloads.

The communication algorithms move *sets* of sparse gradients: Spar-Reduce-
Scatter sends a bag of blocks per transmission step, and the Bruck All-Gather
forwards a growing list of per-worker selections.  Shipping those sets as
Python lists of :class:`~repro.sparse.vector.SparseGradient` objects models
one wire transfer per element — per-object headers, per-object size
accounting, and per-object decode work on the receiver.

:class:`PackedBags` is the batched alternative: all bags of one message are
concatenated into a single contiguous ``(indices, values)`` buffer pair with
an ``offsets`` table delimiting the bags, exactly like an MPI message built
from one gather of COO segments.  Properties of the format:

* **One buffer pair on the wire.**  ``comm_size`` is derived from the packed
  arrays alone (``indices.size + values.size`` — two elements per non-zero,
  the paper's COO convention).  Bag identifiers (block ids, group positions)
  and the offsets table are *metadata* and cost nothing, mirroring how a real
  implementation encodes them in the message header.
* **Zero-copy decode.**  :meth:`bag` / :meth:`items` rebuild each
  :class:`SparseGradient` as a slice view of the packed buffers through the
  trusted ``from_sorted_unique`` constructor (each bag was a valid sparse
  gradient when packed, and packing preserves per-bag order), so receivers
  can feed the views straight into the PR 1 ``merge_add`` / ``merge_many``
  kernels.
* **Immutable on the wire.**  The packed buffers are marked read-only at
  construction, so no receiver can corrupt another receiver's (or the
  sender's) view of the same physical message.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..sparse.vector import SparseGradient

__all__ = ["PackedBags"]


@dataclass(frozen=True)
class PackedBags:
    """A batch of sparse COO bags packed into one contiguous buffer pair.

    ``indices`` / ``values`` hold the concatenation of every bag's COO
    arrays; bag ``i`` occupies the half-open slice ``offsets[i]:offsets[i+1]``
    and carries the metadata identifier ``ids[i]`` (a block id, a group
    position — whatever the caller needs to route the bag on receive).
    """

    #: Per-bag metadata identifiers (block ids, positions, ...). Zero cost.
    ids: Tuple[int, ...]
    #: ``int64`` array of ``num_bags + 1`` cumulative bag boundaries. Zero cost.
    offsets: np.ndarray
    #: Concatenated, per-bag-sorted COO indices of every bag.
    indices: np.ndarray
    #: Concatenated COO values matching ``indices``.
    values: np.ndarray
    #: Length of the underlying gradient vector.
    length: int

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def pack(cls, bags: Sequence[SparseGradient],
             ids: Optional[Sequence[int]] = None) -> "PackedBags":
        """Concatenate ``bags`` into one packed message payload.

        ``ids`` defaults to the bag positions ``0..len(bags)-1``; callers
        that route by block id pass the block ids instead.
        """
        if ids is None:
            ids = range(len(bags))
        ids = tuple(int(i) for i in ids)
        if len(ids) != len(bags):
            raise ValueError("ids and bags must have the same length")
        if not bags:
            raise ValueError("pack needs at least one bag")
        length = bags[0].length
        for bag in bags[1:]:
            if bag.length != length:
                raise ValueError("cannot pack sparse gradients of different lengths")
        offsets = np.zeros(len(bags) + 1, dtype=np.int64)
        np.cumsum([bag.nnz for bag in bags], out=offsets[1:])
        if len(bags) == 1:
            # Single bag: reuse the existing arrays as the packed buffers
            # (read-only views so the freeze never reaches the caller's
            # arrays).
            indices = bags[0].indices.view()
            values = bags[0].values.view()
        else:
            indices = np.concatenate([bag.indices for bag in bags])
            values = np.concatenate([bag.values for bag in bags])
        for array in (offsets, indices, values):
            array.flags.writeable = False
        return cls(ids=ids, offsets=offsets, indices=indices, values=values,
                   length=length)

    def __post_init__(self) -> None:
        if self.offsets.shape[0] != len(self.ids) + 1:
            raise ValueError("offsets must have one more entry than ids")
        if self.indices.shape[0] != self.values.shape[0]:
            raise ValueError("indices and values must have the same length")
        if int(self.offsets[-1]) != self.indices.shape[0]:
            raise ValueError("offsets do not cover the packed arrays")

    # ------------------------------------------------------------------
    # wire accounting
    # ------------------------------------------------------------------
    @property
    def num_bags(self) -> int:
        """Number of packed bags (``int``)."""
        return len(self.ids)

    @property
    def nnz(self) -> int:
        """Total non-zeros across all bags."""
        return int(self.indices.shape[0])

    @property
    def comm_size(self) -> float:
        """Transmitted elements: the packed COO arrays only (two elements per
        non-zero).  Ids and offsets are header metadata and cost nothing."""
        return float(self.indices.shape[0] + self.values.shape[0])

    # ------------------------------------------------------------------
    # decode
    # ------------------------------------------------------------------
    def bag(self, position: int) -> SparseGradient:
        """Decode bag ``position`` as a zero-copy view of the packed buffers."""
        lo = int(self.offsets[position])
        hi = int(self.offsets[position + 1])
        return SparseGradient.from_sorted_unique(
            self.indices[lo:hi], self.values[lo:hi], self.length
        )

    def items(self) -> Iterator[Tuple[int, SparseGradient]]:
        """Iterate ``(id, bag)`` pairs in packing order."""
        for position, bag_id in enumerate(self.ids):
            yield bag_id, self.bag(position)

    def to_list(self) -> List[SparseGradient]:
        """Decode every bag, in packing order (ids discarded)."""
        return [self.bag(position) for position in range(self.num_bags)]

    def __len__(self) -> int:
        """Alias for :attr:`num_bags`."""
        return self.num_bags

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PackedBags(num_bags={self.num_bags}, nnz={self.nnz}, length={self.length})"
