"""Dense collective communication algorithms over the simulated cluster.

These are the textbook building blocks the paper relies on (Section II and
Figure 3):

* **Bruck All-Gather** — efficient for any number of workers, used by
  SparDL's final intra-team gather and by B-SAG.
* **Recursive-doubling All-Gather** — efficient for power-of-two worker
  counts, used by R-SAG and by the TopkA baseline.
* **Ring All-Reduce** and **Rabenseifner All-Reduce** — the dense baselines.
* **Direct-send Reduce-Scatter** — the latency-heavy pattern used by the
  TopkDSA and Ok-Topk baselines.

All collectives support *grouped* execution: several disjoint groups of
workers run the same collective concurrently and share communication
rounds, which is how SparDL's teams overlap their intra-team phases.

Accounting convention: control metadata (group positions, slice offsets,
block ids) is never billed as transmitted elements — messages whose payload
carries such bookkeeping alongside the data pass an explicit ``size=`` with
the data elements only, so recorded volumes match the closed-form element
counts of the alpha-beta analysis exactly.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..sparse.vector import SparseGradient
from .transport import Message, Transport, payload_size
from .packed import PackedBags

__all__ = [
    "allgather_bruck",
    "allgather_bruck_grouped",
    "allgather_recursive_doubling",
    "allgather_recursive_doubling_grouped",
    "reduce_scatter_direct",
    "allreduce_ring",
    "allreduce_rabenseifner",
    "allreduce_dense",
]


def _validate_group(group: Sequence[int], cluster: Transport) -> None:
    if len(set(group)) != len(group):
        raise ValueError("group contains duplicate ranks")
    for rank in group:
        if not 0 <= rank < cluster.num_workers:
            raise ValueError(f"rank {rank} outside cluster of size {cluster.num_workers}")


# ---------------------------------------------------------------------------
# Bruck All-Gather
# ---------------------------------------------------------------------------
def allgather_bruck_grouped(
    cluster: Transport,
    groups: Sequence[Sequence[int]],
    items: Dict[int, Any],
) -> Dict[int, List[Any]]:
    """Bruck All-Gather run concurrently inside each group.

    ``items`` maps every participating global rank to its local item.  The
    result maps every participating rank to the list of items of its whole
    group, ordered by position within the group (so ``result[rank][j]`` is
    the item contributed by ``group[j]``).

    All groups advance in lock-step; a communication step performed by any
    group counts as a single shared round, which models teams communicating
    in parallel.

    Sparse payloads use the batched wire format: when every forwarded item
    is a :class:`~repro.sparse.vector.SparseGradient`, the slice of the
    rolling buffer is packed into one :class:`PackedBags` buffer pair per
    message (``comm_size`` derived from the packed arrays — identical to the
    sum of the per-item COO sizes) and unpacked into zero-copy views on
    receive.  Other item types travel as plain lists, unchanged.
    """
    for group in groups:
        _validate_group(group, cluster)

    # Per-rank rolling buffer, starting with the local item.
    buffers: Dict[int, List[Any]] = {rank: [items[rank]] for group in groups for rank in group}
    max_size = max((len(group) for group in groups), default=0)
    if max_size == 0:
        return {}
    num_steps = max(1, math.ceil(math.log2(max_size))) if max_size > 1 else 0

    for step in range(num_steps):
        distance = 1 << step
        messages: List[Message] = []
        for group in groups:
            size = len(group)
            if distance >= size:
                continue
            for pos, rank in enumerate(group):
                dst = group[(pos - distance) % size]
                # At step t each worker forwards the first min(2^t, P - 2^t)
                # items it holds; the receiver then holds min(2^(t+1), P).
                count = min(distance, size - distance)
                payload: Any = buffers[rank][:count]
                if all(isinstance(item, SparseGradient) for item in payload):
                    payload = PackedBags.pack(payload)
                messages.append(Message(src=rank, dst=dst, payload=payload, tag=f"bruck-{step}"))
        if not messages:
            continue
        inboxes = cluster.exchange(messages)
        for dst, inbox in inboxes.items():
            for message in inbox:
                if isinstance(message.payload, PackedBags):
                    buffers[dst].extend(message.payload.to_list())
                else:
                    buffers[dst].extend(message.payload)

    # Trim and rotate so results are in absolute group order.
    results: Dict[int, List[Any]] = {}
    for group in groups:
        size = len(group)
        for pos, rank in enumerate(group):
            rolled = buffers[rank][:size]
            if len(rolled) != size:
                raise RuntimeError("Bruck All-Gather did not converge")
            ordered = [None] * size
            for offset, item in enumerate(rolled):
                ordered[(pos + offset) % size] = item
            results[rank] = ordered
    return results


def allgather_bruck(
    cluster: Transport,
    items: Dict[int, Any],
    group: Optional[Sequence[int]] = None,
) -> Dict[int, List[Any]]:
    """Bruck All-Gather over one group (default: the whole cluster)."""
    if group is None:
        group = list(cluster.ranks)
    return allgather_bruck_grouped(cluster, [list(group)], items)


# ---------------------------------------------------------------------------
# Recursive doubling All-Gather
# ---------------------------------------------------------------------------
def allgather_recursive_doubling_grouped(
    cluster: Transport,
    groups: Sequence[Sequence[int]],
    items: Dict[int, Any],
) -> Dict[int, List[Any]]:
    """Recursive-doubling All-Gather inside each (power-of-two sized) group."""
    for group in groups:
        _validate_group(group, cluster)
        size = len(group)
        if size & (size - 1):
            raise ValueError(
                "recursive doubling requires a power-of-two group size; "
                f"got {size} (use Bruck All-Gather instead)"
            )

    # gathered[rank] maps group position -> item
    gathered: Dict[int, Dict[int, Any]] = {}
    for group in groups:
        for pos, rank in enumerate(group):
            gathered[rank] = {pos: items[rank]}

    max_size = max((len(group) for group in groups), default=1)
    num_steps = int(math.log2(max_size)) if max_size > 1 else 0
    for step in range(num_steps):
        distance = 1 << step
        messages: List[Message] = []
        for group in groups:
            size = len(group)
            if distance >= size:
                continue
            for pos, rank in enumerate(group):
                partner_pos = pos ^ distance
                partner = group[partner_pos]
                payload = list(gathered[rank].items())
                # Group positions are routing metadata, not transmitted
                # gradient data: bill only the items themselves.
                payload_elements = sum(payload_size(item) for _, item in payload)
                messages.append(Message(src=rank, dst=partner, payload=payload,
                                         size=payload_elements, tag=f"rd-{step}"))
        inboxes = cluster.exchange(messages)
        for dst, inbox in inboxes.items():
            for message in inbox:
                gathered[dst].update(dict(message.payload))

    results: Dict[int, List[Any]] = {}
    for group in groups:
        size = len(group)
        for rank in group:
            ordered = [gathered[rank][pos] for pos in range(size)]
            results[rank] = ordered
    return results


def allgather_recursive_doubling(
    cluster: Transport,
    items: Dict[int, Any],
    group: Optional[Sequence[int]] = None,
) -> Dict[int, List[Any]]:
    if group is None:
        group = list(cluster.ranks)
    return allgather_recursive_doubling_grouped(cluster, [list(group)], items)


# ---------------------------------------------------------------------------
# Reduce-Scatter (direct sends)
# ---------------------------------------------------------------------------
def reduce_scatter_direct(
    cluster: Transport,
    vectors: Dict[int, np.ndarray],
    group: Optional[Sequence[int]] = None,
) -> Dict[int, np.ndarray]:
    """Reduce-Scatter where every worker sends each partition straight to its
    owner (the latency-heavy pattern of TopkDSA / Ok-Topk, one peer per
    round, ``P - 1`` rounds)."""
    if group is None:
        group = list(cluster.ranks)
    group = list(group)
    _validate_group(group, cluster)
    size = len(group)
    first = vectors[group[0]]
    n = first.shape[0]
    bounds = _partition_bounds(n, size)

    partial: Dict[int, np.ndarray] = {}
    for pos, rank in enumerate(group):
        lo, hi = bounds[pos]
        partial[rank] = vectors[rank][lo:hi].astype(np.float64, copy=True)

    for shift in range(1, size):
        messages = []
        for pos, rank in enumerate(group):
            dst_pos = (pos + shift) % size
            dst = group[dst_pos]
            lo, hi = bounds[dst_pos]
            messages.append(Message(src=rank, dst=dst, payload=vectors[rank][lo:hi]))
        inboxes = cluster.exchange(messages)
        for dst, inbox in inboxes.items():
            for message in inbox:
                partial[dst] = partial[dst] + np.asarray(message.payload, dtype=np.float64)
    return partial


# ---------------------------------------------------------------------------
# Dense All-Reduce
# ---------------------------------------------------------------------------
def allreduce_ring(
    cluster: Transport,
    vectors: Dict[int, np.ndarray],
    group: Optional[Sequence[int]] = None,
) -> Dict[int, np.ndarray]:
    """Bandwidth-optimal ring All-Reduce (2(P-1) rounds, 2n(P-1)/P volume)."""
    if group is None:
        group = list(cluster.ranks)
    group = list(group)
    _validate_group(group, cluster)
    size = len(group)
    n = vectors[group[0]].shape[0]
    if size == 1:
        only = group[0]
        return {only: vectors[only].astype(np.float64, copy=True)}
    bounds = _partition_bounds(n, size)

    chunks: Dict[int, List[np.ndarray]] = {
        rank: [vectors[rank][lo:hi].astype(np.float64, copy=True) for lo, hi in bounds]
        for rank in group
    }

    # Reduce-scatter phase.
    for step in range(size - 1):
        messages = []
        for pos, rank in enumerate(group):
            chunk_idx = (pos - step) % size
            dst = group[(pos + 1) % size]
            messages.append(Message(src=rank, dst=dst, payload=chunks[rank][chunk_idx],
                                     tag=f"ring-rs-{chunk_idx}"))
        inboxes = cluster.exchange(messages)
        for pos, rank in enumerate(group):
            chunk_idx = (pos - 1 - step) % size
            for message in inboxes.get(rank, []):
                chunks[rank][chunk_idx] = chunks[rank][chunk_idx] + np.asarray(message.payload)

    # All-gather phase.
    for step in range(size - 1):
        messages = []
        for pos, rank in enumerate(group):
            chunk_idx = (pos + 1 - step) % size
            dst = group[(pos + 1) % size]
            messages.append(Message(src=rank, dst=dst, payload=chunks[rank][chunk_idx],
                                     tag=f"ring-ag-{chunk_idx}"))
        inboxes = cluster.exchange(messages)
        for pos, rank in enumerate(group):
            chunk_idx = (pos - step) % size
            for message in inboxes.get(rank, []):
                chunks[rank][chunk_idx] = np.asarray(message.payload, dtype=np.float64)

    return {rank: np.concatenate(chunks[rank]) for rank in group}


def allreduce_rabenseifner(
    cluster: Transport,
    vectors: Dict[int, np.ndarray],
    group: Optional[Sequence[int]] = None,
) -> Dict[int, np.ndarray]:
    """Rabenseifner's All-Reduce: recursive-halving Reduce-Scatter followed by
    recursive-doubling All-Gather.  Requires a power-of-two group size."""
    if group is None:
        group = list(cluster.ranks)
    group = list(group)
    _validate_group(group, cluster)
    size = len(group)
    if size & (size - 1):
        raise ValueError("Rabenseifner's All-Reduce requires a power-of-two group size")
    if size == 1:
        only = group[0]
        return {only: vectors[only].astype(np.float64, copy=True)}

    n = vectors[group[0]].shape[0]
    working: Dict[int, np.ndarray] = {rank: vectors[rank].astype(np.float64, copy=True) for rank in group}
    # Track the index range each worker is currently responsible for.
    ranges: Dict[int, tuple[int, int]] = {rank: (0, n) for rank in group}

    num_steps = int(math.log2(size))
    # Recursive halving reduce-scatter.
    for step in range(num_steps):
        distance = size >> (step + 1)
        messages = []
        plan = {}
        for pos, rank in enumerate(group):
            partner = group[pos ^ distance]
            lo, hi = ranges[rank]
            mid = (lo + hi) // 2
            keep_high = bool(pos & distance)
            if keep_high:
                send_lo, send_hi, keep = lo, mid, (mid, hi)
            else:
                send_lo, send_hi, keep = mid, hi, (lo, mid)
            plan[rank] = keep
            # The slice offset is addressing metadata; only the chunk's
            # elements travel.
            messages.append(Message(src=rank, dst=partner,
                                     payload=(send_lo, working[rank][send_lo:send_hi]),
                                     size=float(send_hi - send_lo)))
        inboxes = cluster.exchange(messages)
        for rank in group:
            ranges[rank] = plan[rank]
            for message in inboxes.get(rank, []):
                lo, chunk = message.payload
                working[rank][lo:lo + len(chunk)] += chunk

    # Recursive doubling all-gather of the owned ranges.
    for step in reversed(range(num_steps)):
        distance = size >> (step + 1)
        messages = []
        for pos, rank in enumerate(group):
            partner = group[pos ^ distance]
            lo, hi = ranges[rank]
            messages.append(Message(src=rank, dst=partner, payload=(lo, working[rank][lo:hi]),
                                     size=float(hi - lo)))
        inboxes = cluster.exchange(messages)
        for rank in group:
            lo, hi = ranges[rank]
            for message in inboxes.get(rank, []):
                other_lo, chunk = message.payload
                working[rank][other_lo:other_lo + len(chunk)] = chunk
                lo = min(lo, other_lo)
                hi = max(hi, other_lo + len(chunk))
            ranges[rank] = (lo, hi)

    return {rank: working[rank] for rank in group}


def allreduce_dense(
    cluster: Transport,
    vectors: Dict[int, np.ndarray],
    group: Optional[Sequence[int]] = None,
) -> Dict[int, np.ndarray]:
    """Dense All-Reduce choosing Rabenseifner for power-of-two groups and the
    ring algorithm otherwise."""
    if group is None:
        group = list(cluster.ranks)
    size = len(group)
    if size and not size & (size - 1):
        return allreduce_rabenseifner(cluster, vectors, group)
    return allreduce_ring(cluster, vectors, group)


# ---------------------------------------------------------------------------
def _partition_bounds(n: int, parts: int) -> List[tuple[int, int]]:
    """Split ``[0, n)`` into ``parts`` contiguous, nearly equal ranges."""
    base = n // parts
    remainder = n % parts
    bounds = []
    start = 0
    for i in range(parts):
        length = base + (1 if i < remainder else 0)
        bounds.append((start, start + length))
        start += length
    return bounds
