"""The transport protocol: what every execution backend must provide.

The staged pipeline funnels *all* communication of a synchronisation step
through one boundary — the ``exchange`` stage — and the read-only-view
message discipline guarantees that nothing outside that boundary shares
writable memory between workers.  This module names that boundary
explicitly: :class:`Transport` is the protocol every execution backend
implements, and everything above it (the pipeline driver, the
synchronisers, the trainer, the ``repro.api`` facade) programs against the
protocol instead of a concrete cluster class.

Two backends ship:

* :class:`~repro.comm.cluster.SimulatedCluster` — the deterministic,
  bit-exact in-process reference.  Supports every capability, including
  the simulation-only ones (fault plans, elastic membership events).
* :class:`~repro.comm.mp_backend.MultiprocessCluster` — ``P`` workers as
  real OS processes exchanging the same :class:`Message` wire format over
  pipes, with identical accounting.

Capabilities
------------
Backends differ in what they can model.  Rather than letting callers probe
``isinstance`` (which would re-couple the layers this module decouples),
every transport advertises a :class:`TransportCapabilities` record, and
simulation-only features raise :class:`UnsupportedTransportFeature` with a
pointer to the reference backend instead of degrading silently.

Worker compute
--------------
Beyond message passing, a transport can *execute* per-rank work where the
rank lives: :meth:`Transport.run_workers` runs one task per rank against a
persistent per-rank context.  The base implementation executes tasks
in-process in ascending rank order (the deterministic reference);
process-backed transports dispatch them to the worker processes and run
them concurrently.  Tasks must therefore be rank-order independent: any
randomness must come from the per-rank ``seed_sequence`` the context
provides (one :class:`numpy.random.SeedSequence` spawn per rank, identical
across backends), never from shared mutable state.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .stats import CommStats

__all__ = [
    "Message",
    "Transport",
    "TransportCapabilities",
    "UnsupportedTransportFeature",
    "payload_size",
    "freeze_payload",
    "parse_backend_spec",
    "make_transport",
    "transport_spec",
]


def payload_size(payload: Any) -> float:
    """Number of transmitted elements for ``payload``.

    * ``None`` has size 0 (control message).
    * NumPy arrays: one element per entry.
    * Objects with a ``comm_size`` attribute (e.g. sparse gradients in COO
      form) report their own size.
    * Lists / tuples: sum of their items.
    * Scalars: 1.
    """
    if payload is None:
        return 0.0
    if isinstance(payload, np.ndarray):
        return float(payload.size)
    comm_size = getattr(payload, "comm_size", None)
    if comm_size is not None:
        return float(comm_size)
    if isinstance(payload, (list, tuple)):
        return float(sum(payload_size(item) for item in payload))
    if isinstance(payload, (int, float, np.integer, np.floating)):
        return 1.0
    raise TypeError(f"cannot determine communication size of {type(payload)!r}")


def freeze_payload(payload: Any) -> Any:
    """Return ``payload`` with every NumPy array replaced by a read-only view.

    Senders routinely pass live views of their own state (a slice of a
    working buffer, a chunk of a ring segment); a receiver writing into such
    a view in place would silently corrupt the sender.  A real network never
    shares memory between peers, so the exchange boundary delivers arrays
    read-only: an accidental in-place write raises immediately instead of
    corrupting remote state.  Lists and tuples are frozen recursively; other
    payload objects (sparse gradients, packed buffers) are immutable by
    contract and pass through unchanged.

    Process-backed transports apply the same freeze to payloads arriving
    from a worker process, so the discipline is identical on every backend
    even though a deserialised array no longer aliases any sender memory.
    """
    if isinstance(payload, np.ndarray):
        view = payload.view()
        view.flags.writeable = False
        return view
    if isinstance(payload, tuple):
        return tuple(freeze_payload(item) for item in payload)
    if isinstance(payload, list):
        return [freeze_payload(item) for item in payload]
    return payload


@dataclass
class Message:
    """A point-to-point message between two workers.

    ``size`` may be given explicitly (for example to exclude routing
    metadata from the accounting); otherwise it is derived from the payload
    via :func:`payload_size`.  ``size_final=True`` declares the explicit
    size authoritative: an installed wire pricer (see
    :meth:`Transport.install_pricer`) must not re-derive it — the
    sender already accounted for compression or control-channel semantics
    that the payload structure alone cannot express.

    ``lossy=True`` declares that the *sender* can account for this message
    never arriving: past the retry budget of an installed
    :class:`~repro.comm.faults.FaultPlan` the message is declared lost and
    handed back via :meth:`Transport.drain_lost` so its mass can be
    folded into the sender's residual path.  Non-lossy messages model a
    reliable transport: they are force-delivered (honestly billed) after
    the budget, because the algorithms sending them cannot degrade
    gracefully without diverging across workers.
    """

    src: int
    dst: int
    payload: Any = None
    size: Optional[float] = None
    tag: str = ""
    size_final: bool = False
    lossy: bool = False

    def __post_init__(self) -> None:
        if self.size is None:
            self.size = payload_size(self.payload)
        if self.size < 0:
            raise ValueError("message size must be non-negative")


class UnsupportedTransportFeature(RuntimeError):
    """A capability was requested from a transport that does not provide it.

    Raised instead of degrading silently: a fault plan installed on a
    process-backed transport would otherwise simply never fire, turning a
    robustness experiment into a reliable run without any signal.
    """


@dataclass(frozen=True)
class TransportCapabilities:
    """What an execution backend can model.

    ``fault_injection``
        :meth:`Transport.install_fault_plan` accepts a
        :class:`~repro.comm.faults.FaultPlan` (message drops/delays,
        stragglers, membership events).  Simulation-only.
    ``wire_pricing``
        :meth:`Transport.install_pricer` accepts a wire pricer (quantized
        accounting).  Pricing happens at admission, before any physical
        transit, so both backends support it.
    ``worker_compute``
        :meth:`Transport.run_workers` executes per-rank tasks.
    ``parallel_workers``
        ``run_workers`` tasks execute concurrently (one per worker
        process) rather than serially in the calling process.
    ``real_processes``
        Workers are real OS processes and payloads physically leave the
        calling process; wall-clock timings of this backend are measured,
        not simulated.
    """

    fault_injection: bool
    wire_pricing: bool
    worker_compute: bool
    parallel_workers: bool
    real_processes: bool


class Transport(ABC):
    """Protocol of an execution backend: ``P`` ranked workers, synchronous
    message rounds, communication accounting and per-rank task execution.

    Concrete backends implement :meth:`exchange` (and whatever capabilities
    they advertise); the base class owns everything that must behave
    identically on every backend so the accounting can never diverge:
    message admission (validation, wire pricing, read-only freezing),
    :class:`~repro.comm.stats.CommStats` ownership, the pairwise
    :meth:`sendrecv` convenience wrapper and the per-rank context of
    :meth:`run_workers`.
    """

    #: Token naming this backend in ``backend=`` spec strings ("sim", "mp").
    spec_name: str = ""
    #: What this backend can model; see :class:`TransportCapabilities`.
    capabilities: TransportCapabilities

    def __init__(self, num_workers: int, *, seed: int = 0) -> None:
        if num_workers <= 0:
            raise ValueError("a cluster needs at least one worker")
        self._num_workers = int(num_workers)
        self._stats = CommStats(num_workers=self._num_workers)
        self._pricer: Optional[Any] = None
        self._tracer: Optional[Any] = None
        self._seed = int(seed)
        self._worker_ctx: Dict[int, Dict[str, Any]] = {}

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        return self._num_workers

    @property
    def ranks(self) -> range:
        return range(self._num_workers)

    @property
    def stats(self) -> CommStats:
        return self._stats

    def reset_stats(self) -> CommStats:
        """Reset accounting and return the statistics accumulated so far."""
        old = self._stats
        self._stats = CommStats(num_workers=self._num_workers)
        return old

    # ------------------------------------------------------------------
    # wire pricing
    # ------------------------------------------------------------------
    def install_pricer(self, pricer: Optional[Any]) -> Optional[Any]:
        """Install a wire pricer for subsequent :meth:`exchange` rounds.

        ``pricer(message) -> float`` re-derives the billed size of every
        message whose size came from its payload (messages constructed with
        ``size_final=True`` keep their sender-computed size).  Synchronisers
        with a compression stage install their compressor's pricer for the
        duration of one step; returns the previously installed pricer so
        nested drivers (e.g. bucketed sessions on a shared cluster) can
        restore it.  Pricing happens at message admission — before any
        physical transit — so every backend whose capabilities advertise
        ``wire_pricing`` bills identically to the simulated reference.
        """
        if pricer is not None and not self.capabilities.wire_pricing:
            raise UnsupportedTransportFeature(
                f"{type(self).__name__} does not support wire pricers; run "
                "quantized accounting on a backend with the wire_pricing "
                "capability (SimulatedCluster, MultiprocessCluster)")
        previous = self._pricer
        self._pricer = pricer
        return previous

    # ------------------------------------------------------------------
    # tracing
    # ------------------------------------------------------------------
    def install_tracer(self, tracer: Optional[Any]) -> Optional[Any]:
        """Install a :class:`~repro.obs.trace.Tracer` observing admission.

        Every message that passes :meth:`_admit` — the single code path both
        backends bill through — is reported to the tracer with its final
        wire-priced size, so the per-message timeline matches the accounting
        exactly.  Returns the previously installed tracer; ``None``
        uninstalls.  Supported by every backend (process backends
        additionally stream worker-side spans back at :meth:`close`).
        """
        previous = self._tracer
        self._tracer = tracer if tracer is not None and tracer.enabled else None
        return previous

    @property
    def tracer(self) -> Optional[Any]:
        """The installed tracer (``None`` when tracing is off)."""
        return self._tracer

    # ------------------------------------------------------------------
    # fault injection (simulation-only by default)
    # ------------------------------------------------------------------
    def install_fault_plan(self, plan: Optional[Any]) -> Optional[Any]:
        """Install a :class:`~repro.comm.faults.FaultPlan` for subsequent
        :meth:`exchange` rounds; returns the previously installed plan.

        Fault injection is a simulation capability: deterministic message
        fates require the single-process, seed-keyed delivery loop of the
        reference backend.  Transports without the ``fault_injection``
        capability accept only ``None`` (a no-op, so capability-agnostic
        callers can always *clear* a plan) and raise
        :class:`UnsupportedTransportFeature` for anything else.
        """
        if plan is None:
            return None
        raise UnsupportedTransportFeature(
            f"{type(self).__name__} does not support fault plans; fault "
            "injection (drops, delays, stragglers, membership events) is "
            "simulation-only — run it on SimulatedCluster, the deterministic "
            "reference backend")

    @property
    def fault_plan(self) -> Optional[Any]:
        """The installed :class:`~repro.comm.faults.FaultPlan` (``None`` on
        backends without the ``fault_injection`` capability)."""
        return None

    def drain_lost(self) -> List[Message]:
        """Return (and clear) the messages lost past the retry budget since
        the last drain.  Always empty on backends without fault injection."""
        return []

    # ------------------------------------------------------------------
    # message passing
    # ------------------------------------------------------------------
    @abstractmethod
    def exchange(self, messages: Sequence[Message]) -> Dict[int, List[Message]]:
        """Deliver one synchronous round of messages.

        Returns the inbox of every worker that received something:
        ``{dst_rank: [messages in submission order]}``.  Raises if any rank
        is out of range or a worker messages itself (local data movement is
        free and must not be modelled as communication).  NumPy array
        payloads are delivered as read-only views (see
        :func:`freeze_payload`) on every backend.
        """

    def sendrecv(self, sends: Dict[int, Tuple[int, Any]],
                 tag: str = "sendrecv") -> Dict[int, Dict[int, Any]]:
        """Convenience wrapper for one round of pairwise sends.

        ``sends`` maps source rank to ``(dst, payload)``; the return value
        maps each destination rank to its inbox, keyed by source rank:
        ``{dst: {src: payload}}``.  Keying by source keeps a single received
        payload distinguishable from a payload that *is* a list — returning
        the bare payload for one sender and a list for several (the previous
        behaviour) made the two cases ambiguous.

        Every message carries ``tag`` (default ``"sendrecv"``) so pairwise
        sends are distinguishable from collective traffic.  This matters
        under fault injection: :class:`~repro.comm.faults.FaultPlan` samples
        each message's fate from ``(round, attempt, src, dst, tag)``, so an
        untagged pairwise send between the same pair in the same round as a
        collective message would share the collective's fault fate — and be
        indistinguishable from it in fault traces.  Callers interleaving
        several pairwise patterns per round should pass distinct tags.
        """
        messages = [Message(src=s, dst=d, payload=p, tag=tag)
                    for s, (d, p) in sends.items()]
        inboxes = self.exchange(messages)
        return {
            dst: {message.src: message.payload for message in inbox}
            for dst, inbox in inboxes.items()
        }

    # ------------------------------------------------------------------
    # per-rank task execution
    # ------------------------------------------------------------------
    def run_workers(self, fn: Callable[..., Any],
                    args_by_rank: Optional[Mapping[int, tuple]] = None
                    ) -> Dict[int, Any]:
        """Execute ``fn(context, rank, *args)`` once per rank.

        ``args_by_rank`` maps rank to the extra positional arguments of that
        rank's call (``None`` runs every rank with no extra arguments; a
        partial mapping runs only the listed ranks).  ``context`` is a
        per-rank ``dict`` that persists across calls — tasks park state
        (model replicas, RNG streams) there; it always contains ``"rank"``
        and ``"seed_sequence"`` (this rank's
        :class:`numpy.random.SeedSequence` spawn, identical on every
        backend, so randomised tasks are rank-order independent by
        construction).

        The base implementation executes tasks in-process, serially, in
        ascending rank order — the deterministic reference.  Backends with
        the ``parallel_workers`` capability run them concurrently in the
        worker processes; tasks and their arguments must then be picklable
        (``fn`` a module-level function) and rank-order independent.
        Results are returned as ``{rank: return_value}``.
        """
        if args_by_rank is None:
            targets = [(rank, ()) for rank in self.ranks]
        else:
            targets = [(rank, tuple(args_by_rank[rank]))
                       for rank in sorted(args_by_rank)]
        results: Dict[int, Any] = {}
        for rank, args in targets:
            self._check_rank(rank)
            results[rank] = fn(self._context(rank), rank, *args)
        return results

    def _context(self, rank: int) -> Dict[str, Any]:
        """The persistent per-rank context of the in-process reference
        implementation of :meth:`run_workers`."""
        context = self._worker_ctx.get(rank)
        if context is None:
            context = self._worker_ctx[rank] = make_worker_context(
                rank, self._seed)
        return context

    # ------------------------------------------------------------------
    # elastic membership
    # ------------------------------------------------------------------
    def resize(self, num_workers: int) -> None:
        """Adopt a new worker count (elastic membership transition).

        Ranks are contiguous ``0..num_workers-1`` after the call; the
        synchroniser applying the membership event remaps its own per-rank
        state (see :meth:`~repro.core.base.GradientSynchronizer.poll_membership`).
        Statistics and per-rank contexts restart from the new membership.
        """
        if num_workers <= 0:
            raise ValueError("a cluster needs at least one worker")
        self._num_workers = int(num_workers)
        self._stats = CommStats(num_workers=self._num_workers)
        self._worker_ctx = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release backend resources (worker processes, pipes).  The
        in-process reference backend holds none; always safe to call twice."""

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # shared internals
    # ------------------------------------------------------------------
    def _admit(self, message: Message) -> Message:
        """Validate, price and freeze one outgoing message.

        Every backend admits through this one code path, so a message is
        billed identically no matter which transport carries it.
        """
        self._check_rank(message.src)
        self._check_rank(message.dst)
        if message.src == message.dst:
            raise ValueError("workers must not send messages to themselves")
        if self._pricer is not None and not message.size_final:
            priced = float(self._pricer(message))
            if not math.isfinite(priced) or priced < 0.0:
                raise ValueError(
                    f"pricer returned invalid message size {priced!r} for "
                    f"{message.src}->{message.dst} (tag {message.tag!r})")
            message.size = priced
        if self._tracer is not None:
            self._tracer.record_message(message.src, message.dst,
                                        message.size, message.tag)
        message.payload = freeze_payload(message.payload)
        return message

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self._num_workers:
            raise ValueError(
                f"worker rank {rank} out of range [0, {self._num_workers})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(num_workers={self._num_workers})"


def make_worker_context(rank: int, seed: int) -> Dict[str, Any]:
    """The initial per-rank context of :meth:`Transport.run_workers`.

    One function shared by every backend (the in-process reference builds
    it lazily, process backends build it inside the worker), so the
    ``seed_sequence`` streams — ``SeedSequence(seed, spawn_key=(rank,))``,
    exactly what ``SeedSequence(seed).spawn(P)[rank]`` yields — are
    identical everywhere and results never depend on which backend ran the
    task or in which order ranks executed.
    """
    return {
        "rank": rank,
        "seed_sequence": np.random.SeedSequence(seed, spawn_key=(rank,)),
    }


# ---------------------------------------------------------------------------
# backend spec strings
# ---------------------------------------------------------------------------
def parse_backend_spec(spec: str) -> Tuple[str, Optional[int]]:
    """Parse a ``backend=`` spec value into ``(kind, num_workers)``.

    ``"sim"`` / ``"mp"`` leave the worker count to the caller (``None``);
    ``"sim:8"`` / ``"mp:4"`` pin it.
    """
    text = str(spec).strip().lower()
    kind, separator, count = text.partition(":")
    if kind not in ("sim", "mp"):
        raise ValueError(
            f"unknown backend {spec!r}; expected sim[:P] or mp[:P]")
    if not separator:
        return kind, None
    if not count:
        raise ValueError(f"malformed backend worker count in {spec!r}")
    try:
        workers = int(count)
    except ValueError:
        raise ValueError(f"malformed backend worker count in {spec!r}") from None
    if workers <= 0:
        raise ValueError(f"backend worker count must be positive, got {spec!r}")
    return kind, workers


def make_transport(spec: str, num_workers: Optional[int] = None) -> Transport:
    """Build a transport from a backend spec string.

    ``spec`` is ``sim[:P]`` or ``mp[:P]``; ``num_workers`` supplies (or must
    agree with) the worker count.
    """
    kind, workers = parse_backend_spec(spec)
    if workers is None:
        workers = num_workers
    elif num_workers is not None and int(num_workers) != workers:
        raise ValueError(
            f"backend spec {spec!r} pins {workers} workers but num_workers="
            f"{num_workers} was requested")
    if workers is None:
        raise ValueError(
            f"backend spec {spec!r} does not carry a worker count; pass "
            "num_workers=... or use the backend:P form")
    if kind == "mp":
        from .mp_backend import MultiprocessCluster
        return MultiprocessCluster(workers)
    from .cluster import SimulatedCluster
    return SimulatedCluster(workers)


def transport_spec(transport: Transport) -> str:
    """The canonical ``backend=`` value of a transport: ``"sim:P"`` / ``"mp:P"``."""
    if not transport.spec_name:
        raise ValueError(
            f"{type(transport).__name__} does not name a backend spec token")
    return f"{transport.spec_name}:{transport.num_workers}"
