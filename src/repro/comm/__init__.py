"""Communication substrate: transports, cost model and collectives.

The :class:`~repro.comm.transport.Transport` protocol names the execution
boundary; two backends implement it — the deterministic in-process
:class:`~repro.comm.cluster.SimulatedCluster` reference and the
process-backed :class:`~repro.comm.mp_backend.MultiprocessCluster`.
"""

from .cluster import Message, SimulatedCluster, freeze_payload, payload_size
from .mp_backend import MultiprocessCluster
from .transport import (
    Transport,
    TransportCapabilities,
    UnsupportedTransportFeature,
    make_transport,
    parse_backend_spec,
    transport_spec,
)
from .collectives import (
    allgather_bruck,
    allgather_bruck_grouped,
    allgather_recursive_doubling,
    allgather_recursive_doubling_grouped,
    allreduce_dense,
    allreduce_rabenseifner,
    allreduce_ring,
    reduce_scatter_direct,
)
from .faults import FaultPlan, MembershipEvent, membership_transition
from .network import ETHERNET, PERFECT, RDMA, HeterogeneousNetwork, NetworkProfile
from .packed import PackedBags
from .stats import CommStats

__all__ = [
    "Message",
    "Transport",
    "TransportCapabilities",
    "UnsupportedTransportFeature",
    "SimulatedCluster",
    "MultiprocessCluster",
    "make_transport",
    "parse_backend_spec",
    "transport_spec",
    "payload_size",
    "freeze_payload",
    "PackedBags",
    "CommStats",
    "FaultPlan",
    "MembershipEvent",
    "membership_transition",
    "NetworkProfile",
    "HeterogeneousNetwork",
    "ETHERNET",
    "RDMA",
    "PERFECT",
    "allgather_bruck",
    "allgather_bruck_grouped",
    "allgather_recursive_doubling",
    "allgather_recursive_doubling_grouped",
    "allreduce_dense",
    "allreduce_rabenseifner",
    "allreduce_ring",
    "reduce_scatter_direct",
]
