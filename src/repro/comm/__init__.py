"""Communication substrate: simulated cluster, cost model and collectives."""

from .cluster import Message, SimulatedCluster, freeze_payload, payload_size
from .collectives import (
    allgather_bruck,
    allgather_bruck_grouped,
    allgather_recursive_doubling,
    allgather_recursive_doubling_grouped,
    allreduce_dense,
    allreduce_rabenseifner,
    allreduce_ring,
    reduce_scatter_direct,
)
from .faults import FaultPlan, MembershipEvent, membership_transition
from .network import ETHERNET, PERFECT, RDMA, HeterogeneousNetwork, NetworkProfile
from .packed import PackedBags
from .stats import CommStats

__all__ = [
    "Message",
    "SimulatedCluster",
    "payload_size",
    "freeze_payload",
    "PackedBags",
    "CommStats",
    "FaultPlan",
    "MembershipEvent",
    "membership_transition",
    "NetworkProfile",
    "HeterogeneousNetwork",
    "ETHERNET",
    "RDMA",
    "PERFECT",
    "allgather_bruck",
    "allgather_bruck_grouped",
    "allgather_recursive_doubling",
    "allgather_recursive_doubling_grouped",
    "allreduce_dense",
    "allreduce_rabenseifner",
    "allreduce_ring",
    "reduce_scatter_direct",
]
