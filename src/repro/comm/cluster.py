"""A simulated, step-synchronous cluster of workers.

The paper evaluates SparDL on a physical 14-machine GPU cluster connected by
MPI.  This repository substitutes that testbed with an in-process simulator:
``P`` workers exchange messages through :class:`SimulatedCluster`, one
synchronous round at a time.  The simulator is *not* a performance model by
itself — it executes the real communication algorithms on real gradient data
— but it records exactly the quantities the alpha-beta model needs (rounds
and per-worker received volume) in :class:`repro.comm.stats.CommStats`.

Design notes
------------
* A call to :meth:`SimulatedCluster.exchange` is one synchronous round: all
  messages passed in are considered concurrent, exactly like one step of a
  bulk-synchronous collective.
* Payload sizes are derived automatically: NumPy arrays count one element
  per entry, objects exposing a ``comm_size`` attribute (sparse gradients)
  use it, and an explicit size can always be given.
* Workers are plain integer ranks; algorithm state lives in the algorithms
  themselves, which keeps every collective a pure function of its inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from .stats import CommStats

__all__ = ["Message", "SimulatedCluster", "payload_size", "freeze_payload"]


def payload_size(payload: Any) -> float:
    """Number of transmitted elements for ``payload``.

    * ``None`` has size 0 (control message).
    * NumPy arrays: one element per entry.
    * Objects with a ``comm_size`` attribute (e.g. sparse gradients in COO
      form) report their own size.
    * Lists / tuples: sum of their items.
    * Scalars: 1.
    """
    if payload is None:
        return 0.0
    if isinstance(payload, np.ndarray):
        return float(payload.size)
    comm_size = getattr(payload, "comm_size", None)
    if comm_size is not None:
        return float(comm_size)
    if isinstance(payload, (list, tuple)):
        return float(sum(payload_size(item) for item in payload))
    if isinstance(payload, (int, float, np.integer, np.floating)):
        return 1.0
    raise TypeError(f"cannot determine communication size of {type(payload)!r}")


def freeze_payload(payload: Any) -> Any:
    """Return ``payload`` with every NumPy array replaced by a read-only view.

    Senders routinely pass live views of their own state (a slice of a
    working buffer, a chunk of a ring segment); a receiver writing into such
    a view in place would silently corrupt the sender.  A real network never
    shares memory between peers, so the exchange boundary delivers arrays
    read-only: an accidental in-place write raises immediately instead of
    corrupting remote state.  Lists and tuples are frozen recursively; other
    payload objects (sparse gradients, packed buffers) are immutable by
    contract and pass through unchanged.
    """
    if isinstance(payload, np.ndarray):
        view = payload.view()
        view.flags.writeable = False
        return view
    if isinstance(payload, tuple):
        return tuple(freeze_payload(item) for item in payload)
    if isinstance(payload, list):
        return [freeze_payload(item) for item in payload]
    return payload


@dataclass
class Message:
    """A point-to-point message between two workers.

    ``size`` may be given explicitly (for example to exclude routing
    metadata from the accounting); otherwise it is derived from the payload
    via :func:`payload_size`.  ``size_final=True`` declares the explicit
    size authoritative: an installed wire pricer (see
    :meth:`SimulatedCluster.install_pricer`) must not re-derive it — the
    sender already accounted for compression or control-channel semantics
    that the payload structure alone cannot express.
    """

    src: int
    dst: int
    payload: Any = None
    size: Optional[float] = None
    tag: str = ""
    size_final: bool = False

    def __post_init__(self) -> None:
        if self.size is None:
            self.size = payload_size(self.payload)
        if self.size < 0:
            raise ValueError("message size must be non-negative")


class SimulatedCluster:
    """``P`` workers connected by a fully-switched, step-synchronous network."""

    def __init__(self, num_workers: int) -> None:
        if num_workers <= 0:
            raise ValueError("a cluster needs at least one worker")
        self._num_workers = int(num_workers)
        self._stats = CommStats(num_workers=self._num_workers)
        self._pricer: Optional[Any] = None

    # ------------------------------------------------------------------
    # wire pricing
    # ------------------------------------------------------------------
    def install_pricer(self, pricer: Optional[Any]) -> Optional[Any]:
        """Install a wire pricer for subsequent :meth:`exchange` rounds.

        ``pricer(message) -> float`` re-derives the billed size of every
        message whose size came from its payload (messages constructed with
        ``size_final=True`` keep their sender-computed size).  Synchronisers
        with a compression stage install their compressor's pricer for the
        duration of one step; returns the previously installed pricer so
        nested drivers (e.g. bucketed sessions on a shared cluster) can
        restore it.
        """
        previous = self._pricer
        self._pricer = pricer
        return previous

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        return self._num_workers

    @property
    def ranks(self) -> range:
        return range(self._num_workers)

    @property
    def stats(self) -> CommStats:
        return self._stats

    def reset_stats(self) -> CommStats:
        """Reset accounting and return the statistics accumulated so far."""
        old = self._stats
        self._stats = CommStats(num_workers=self._num_workers)
        return old

    # ------------------------------------------------------------------
    # message passing
    # ------------------------------------------------------------------
    def exchange(self, messages: Sequence[Message]) -> Dict[int, List[Message]]:
        """Deliver one synchronous round of messages.

        Returns the inbox of every worker that received something:
        ``{dst_rank: [messages in arrival order]}``.  Raises if any rank is
        out of range or a worker messages itself (local data movement is
        free and must not be modelled as communication).

        NumPy array payloads are delivered as read-only views (see
        :func:`freeze_payload`): peers never share writable memory, so a
        receiver mutating a received array raises instead of silently
        corrupting the sender's state.
        """
        transfers = []
        inboxes: Dict[int, List[Message]] = {}
        for message in messages:
            self._check_rank(message.src)
            self._check_rank(message.dst)
            if message.src == message.dst:
                raise ValueError("workers must not send messages to themselves")
            if self._pricer is not None and not message.size_final:
                message.size = float(self._pricer(message))
            message.payload = freeze_payload(message.payload)
            transfers.append((message.src, message.dst, float(message.size)))
            inboxes.setdefault(message.dst, []).append(message)
        if not transfers:
            return {}
        self._stats.record_round(transfers)
        return inboxes

    def sendrecv(self, sends: Dict[int, tuple[int, Any]]) -> Dict[int, Dict[int, Any]]:
        """Convenience wrapper for one round of pairwise sends.

        ``sends`` maps source rank to ``(dst, payload)``; the return value
        maps each destination rank to its inbox, keyed by source rank:
        ``{dst: {src: payload}}``.  Keying by source keeps a single received
        payload distinguishable from a payload that *is* a list — returning
        the bare payload for one sender and a list for several (the previous
        behaviour) made the two cases ambiguous.
        """
        messages = [Message(src=s, dst=d, payload=p) for s, (d, p) in sends.items()]
        inboxes = self.exchange(messages)
        return {
            dst: {message.src: message.payload for message in inbox}
            for dst, inbox in inboxes.items()
        }

    # ------------------------------------------------------------------
    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self._num_workers:
            raise ValueError(
                f"worker rank {rank} out of range [0, {self._num_workers})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimulatedCluster(num_workers={self._num_workers})"
