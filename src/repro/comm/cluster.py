"""A simulated, step-synchronous cluster of workers.

The paper evaluates SparDL on a physical 14-machine GPU cluster connected by
MPI.  This repository substitutes that testbed with an in-process simulator:
``P`` workers exchange messages through :class:`SimulatedCluster`, one
synchronous round at a time.  The simulator is *not* a performance model by
itself — it executes the real communication algorithms on real gradient data
— but it records exactly the quantities the alpha-beta model needs (rounds
and per-worker received volume) in :class:`repro.comm.stats.CommStats`.

:class:`SimulatedCluster` is the deterministic, bit-exact reference
implementation of the :class:`~repro.comm.transport.Transport` protocol,
and the only backend with the ``fault_injection`` capability: message
fates, stragglers and membership events are pure functions of a seed, so a
faulted run replays exactly.  The process-backed
:class:`~repro.comm.mp_backend.MultiprocessCluster` is gated against this
class bit for bit on the reliable path.

Design notes
------------
* A call to :meth:`SimulatedCluster.exchange` is one synchronous round: all
  messages passed in are considered concurrent, exactly like one step of a
  bulk-synchronous collective.
* Payload sizes are derived automatically: NumPy arrays count one element
  per entry, objects exposing a ``comm_size`` attribute (sparse gradients)
  use it, and an explicit size can always be given.
* Workers are plain integer ranks; algorithm state lives in the algorithms
  themselves, which keeps every collective a pure function of its inputs.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from .transport import (
    Message,
    Transport,
    TransportCapabilities,
    freeze_payload,
    payload_size,
)

__all__ = ["Message", "SimulatedCluster", "payload_size", "freeze_payload"]


class SimulatedCluster(Transport):
    """``P`` workers connected by a fully-switched, step-synchronous network."""

    spec_name = "sim"
    capabilities = TransportCapabilities(
        fault_injection=True,
        wire_pricing=True,
        worker_compute=True,
        parallel_workers=False,
        real_processes=False,
    )

    def __init__(self, num_workers: int) -> None:
        super().__init__(num_workers)
        self._fault_plan: Optional[Any] = None
        #: Monotonic round counter over the cluster's lifetime (never reset
        #: with the statistics) — the deterministic key of fault sampling.
        self._round_counter = 0
        self._lost: List[Message] = []

    # ------------------------------------------------------------------
    # fault injection and elastic membership
    # ------------------------------------------------------------------
    def install_fault_plan(self, plan: Optional[Any]) -> Optional[Any]:
        """Install a :class:`~repro.comm.faults.FaultPlan` for subsequent
        :meth:`exchange` rounds; returns the previously installed plan.

        With no plan installed (the default), ``exchange`` runs the exact
        reliable code path — bit-identical messages, statistics and results.
        A plan whose drop and delay rates are zero is equally bit-identical;
        only actual drop/delay decisions change the recorded rounds.
        """
        previous = self._fault_plan
        self._fault_plan = plan
        return previous

    @property
    def fault_plan(self) -> Optional[Any]:
        """The installed :class:`~repro.comm.faults.FaultPlan` (or ``None``)."""
        return self._fault_plan

    def drain_lost(self) -> List[Message]:
        """Return (and clear) the messages lost past the retry budget since
        the last drain.  The pipeline's robustness policy folds their mass
        into the senders' residual stores."""
        lost = self._lost
        self._lost = []
        return lost

    def resize(self, num_workers: int) -> None:
        """Adopt a new worker count (elastic membership transition).

        Ranks are contiguous ``0..num_workers-1`` after the call; the
        synchroniser applying the membership event remaps its own per-rank
        state (see :meth:`~repro.core.base.GradientSynchronizer.poll_membership`).
        Must be called between steps: undrained lost messages indicate the
        previous step's loss accounting was skipped.
        """
        if self._lost:
            raise RuntimeError(
                "cannot resize the cluster with undrained lost messages; "
                "fold their mass into the residual path first (drain_lost)")
        super().resize(num_workers)

    # ------------------------------------------------------------------
    # message passing
    # ------------------------------------------------------------------
    def exchange(self, messages: Sequence[Message]) -> Dict[int, List[Message]]:
        """Deliver one synchronous round of messages.

        Returns the inbox of every worker that received something:
        ``{dst_rank: [messages in arrival order]}``.  Raises if any rank is
        out of range or a worker messages itself (local data movement is
        free and must not be modelled as communication).

        NumPy array payloads are delivered as read-only views (see
        :func:`~repro.comm.transport.freeze_payload`): peers never share
        writable memory, so a receiver mutating a received array raises
        instead of silently corrupting the sender's state.

        With a message-faulting :class:`~repro.comm.faults.FaultPlan`
        installed, delivery attempts can drop or arrive late; undelivered
        messages are retried under the plan's retry policy, with every
        attempt, backoff idle round and late arrival billed as extra
        recorded rounds.  Past the budget, ``lossy`` messages are parked
        for :meth:`drain_lost` and everything else is force-delivered.
        """
        plan = self._fault_plan
        if plan is not None and plan.injects_message_faults:
            return self._exchange_with_faults(messages)
        transfers = []
        inboxes: Dict[int, List[Message]] = {}
        for message in messages:
            self._admit(message)
            transfers.append((message.src, message.dst, float(message.size)))
            inboxes.setdefault(message.dst, []).append(message)
        if not transfers:
            return {}
        self._stats.record_round(transfers)
        self._round_counter += 1
        return inboxes

    def _exchange_with_faults(self, messages: Sequence[Message]) -> Dict[int, List[Message]]:
        """One logical round under the installed fault plan.

        Each pending message is attempted once per retry round; its fate
        (deliver on time, deliver ``lateness`` rounds late, or drop — which
        includes timing out past the plan's ``timeout_rounds``) is a pure
        function of the plan's seed, the cluster's monotonic round counter,
        the attempt number and the message's ``(src, dst, tag)``.  Billing
        is honest: the nominal round is always recorded, every retry
        attempt and every distinct lateness adds a recorded round, and the
        retry policy's backoff idles are recorded as empty (latency-only)
        rounds.  Inboxes preserve submission order for delivered messages,
        so downstream merge order matches the reliable path.
        """
        plan = self._fault_plan
        retry = getattr(plan, "retry", None)
        if retry is None:
            from ..core.pipeline import RetryPolicy
            retry = RetryPolicy()
        admitted: List[Message] = []
        for message in messages:
            self._admit(message)
            admitted.append(message)
        if not admitted:
            return {}
        base_round = self._round_counter
        delivered: set = set()
        pending: List[int] = list(range(len(admitted)))
        rounds_recorded = 0

        def record(indices: Sequence[int]) -> None:
            nonlocal rounds_recorded
            self._stats.record_round(
                [(admitted[i].src, admitted[i].dst, float(admitted[i].size))
                 for i in indices])
            rounds_recorded += 1

        attempt = 1
        max_attempts = 1 + retry.max_retries
        tracer = self._tracer
        while pending and attempt <= max_attempts:
            if attempt > 1:
                for _ in range(retry.idle_rounds(attempt)):
                    record(())
                self._stats.retried_messages += len(pending)
                if tracer is not None:
                    tracer.record_fault("retry", attempt=attempt,
                                        pending=len(pending),
                                        idle_rounds=retry.idle_rounds(attempt))
            on_time: List[int] = []
            late: Dict[int, List[int]] = {}
            still: List[int] = []
            for index in pending:
                message = admitted[index]
                fate, lateness = plan.message_fate(
                    base_round, attempt, message.src, message.dst, message.tag)
                if fate == "drop":
                    self._stats.dropped_messages += 1
                    still.append(index)
                    if tracer is not None:
                        tracer.record_fault("drop", src=message.src,
                                            dst=message.dst, tag=message.tag,
                                            attempt=attempt)
                elif lateness == 0:
                    on_time.append(index)
                else:
                    self._stats.delayed_messages += 1
                    late.setdefault(lateness, []).append(index)
                    if tracer is not None:
                        tracer.record_fault("late", src=message.src,
                                            dst=message.dst, tag=message.tag,
                                            attempt=attempt, lateness=lateness)
            record(on_time)
            delivered.update(on_time)
            if late:
                for offset in range(1, max(late) + 1):
                    bucket = late.get(offset, [])
                    record(bucket)
                    delivered.update(bucket)
            pending = still
            attempt += 1
        if pending:
            lost = [i for i in pending if admitted[i].lossy]
            forced = [i for i in pending if not admitted[i].lossy]
            self._lost.extend(admitted[i] for i in lost)
            self._stats.lost_messages += len(lost)
            if tracer is not None:
                for i in lost:
                    tracer.record_fault("lost", src=admitted[i].src,
                                        dst=admitted[i].dst,
                                        tag=admitted[i].tag)
            if forced:
                record(forced)
                delivered.update(forced)
                self._stats.forced_deliveries += len(forced)
                if tracer is not None:
                    tracer.record_fault("forced", count=len(forced))
        self._stats.fault_extra_rounds += rounds_recorded - 1
        self._round_counter += rounds_recorded
        inboxes: Dict[int, List[Message]] = {}
        for index, message in enumerate(admitted):
            if index in delivered:
                inboxes.setdefault(message.dst, []).append(message)
        return inboxes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimulatedCluster(num_workers={self._num_workers})"
