"""A simulated, step-synchronous cluster of workers.

The paper evaluates SparDL on a physical 14-machine GPU cluster connected by
MPI.  This repository substitutes that testbed with an in-process simulator:
``P`` workers exchange messages through :class:`SimulatedCluster`, one
synchronous round at a time.  The simulator is *not* a performance model by
itself — it executes the real communication algorithms on real gradient data
— but it records exactly the quantities the alpha-beta model needs (rounds
and per-worker received volume) in :class:`repro.comm.stats.CommStats`.

Design notes
------------
* A call to :meth:`SimulatedCluster.exchange` is one synchronous round: all
  messages passed in are considered concurrent, exactly like one step of a
  bulk-synchronous collective.
* Payload sizes are derived automatically: NumPy arrays count one element
  per entry, objects exposing a ``comm_size`` attribute (sparse gradients)
  use it, and an explicit size can always be given.
* Workers are plain integer ranks; algorithm state lives in the algorithms
  themselves, which keeps every collective a pure function of its inputs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .stats import CommStats

__all__ = ["Message", "SimulatedCluster", "payload_size", "freeze_payload"]


def payload_size(payload: Any) -> float:
    """Number of transmitted elements for ``payload``.

    * ``None`` has size 0 (control message).
    * NumPy arrays: one element per entry.
    * Objects with a ``comm_size`` attribute (e.g. sparse gradients in COO
      form) report their own size.
    * Lists / tuples: sum of their items.
    * Scalars: 1.
    """
    if payload is None:
        return 0.0
    if isinstance(payload, np.ndarray):
        return float(payload.size)
    comm_size = getattr(payload, "comm_size", None)
    if comm_size is not None:
        return float(comm_size)
    if isinstance(payload, (list, tuple)):
        return float(sum(payload_size(item) for item in payload))
    if isinstance(payload, (int, float, np.integer, np.floating)):
        return 1.0
    raise TypeError(f"cannot determine communication size of {type(payload)!r}")


def freeze_payload(payload: Any) -> Any:
    """Return ``payload`` with every NumPy array replaced by a read-only view.

    Senders routinely pass live views of their own state (a slice of a
    working buffer, a chunk of a ring segment); a receiver writing into such
    a view in place would silently corrupt the sender.  A real network never
    shares memory between peers, so the exchange boundary delivers arrays
    read-only: an accidental in-place write raises immediately instead of
    corrupting remote state.  Lists and tuples are frozen recursively; other
    payload objects (sparse gradients, packed buffers) are immutable by
    contract and pass through unchanged.
    """
    if isinstance(payload, np.ndarray):
        view = payload.view()
        view.flags.writeable = False
        return view
    if isinstance(payload, tuple):
        return tuple(freeze_payload(item) for item in payload)
    if isinstance(payload, list):
        return [freeze_payload(item) for item in payload]
    return payload


@dataclass
class Message:
    """A point-to-point message between two workers.

    ``size`` may be given explicitly (for example to exclude routing
    metadata from the accounting); otherwise it is derived from the payload
    via :func:`payload_size`.  ``size_final=True`` declares the explicit
    size authoritative: an installed wire pricer (see
    :meth:`SimulatedCluster.install_pricer`) must not re-derive it — the
    sender already accounted for compression or control-channel semantics
    that the payload structure alone cannot express.

    ``lossy=True`` declares that the *sender* can account for this message
    never arriving: past the retry budget of an installed
    :class:`~repro.comm.faults.FaultPlan` the message is declared lost and
    handed back via :meth:`SimulatedCluster.drain_lost` so its mass can be
    folded into the sender's residual path.  Non-lossy messages model a
    reliable transport: they are force-delivered (honestly billed) after
    the budget, because the algorithms sending them cannot degrade
    gracefully without diverging across workers.
    """

    src: int
    dst: int
    payload: Any = None
    size: Optional[float] = None
    tag: str = ""
    size_final: bool = False
    lossy: bool = False

    def __post_init__(self) -> None:
        if self.size is None:
            self.size = payload_size(self.payload)
        if self.size < 0:
            raise ValueError("message size must be non-negative")


class SimulatedCluster:
    """``P`` workers connected by a fully-switched, step-synchronous network."""

    def __init__(self, num_workers: int) -> None:
        if num_workers <= 0:
            raise ValueError("a cluster needs at least one worker")
        self._num_workers = int(num_workers)
        self._stats = CommStats(num_workers=self._num_workers)
        self._pricer: Optional[Any] = None
        self._fault_plan: Optional[Any] = None
        #: Monotonic round counter over the cluster's lifetime (never reset
        #: with the statistics) — the deterministic key of fault sampling.
        self._round_counter = 0
        self._lost: List[Message] = []

    # ------------------------------------------------------------------
    # wire pricing
    # ------------------------------------------------------------------
    def install_pricer(self, pricer: Optional[Any]) -> Optional[Any]:
        """Install a wire pricer for subsequent :meth:`exchange` rounds.

        ``pricer(message) -> float`` re-derives the billed size of every
        message whose size came from its payload (messages constructed with
        ``size_final=True`` keep their sender-computed size).  Synchronisers
        with a compression stage install their compressor's pricer for the
        duration of one step; returns the previously installed pricer so
        nested drivers (e.g. bucketed sessions on a shared cluster) can
        restore it.
        """
        previous = self._pricer
        self._pricer = pricer
        return previous

    # ------------------------------------------------------------------
    # fault injection and elastic membership
    # ------------------------------------------------------------------
    def install_fault_plan(self, plan: Optional[Any]) -> Optional[Any]:
        """Install a :class:`~repro.comm.faults.FaultPlan` for subsequent
        :meth:`exchange` rounds; returns the previously installed plan.

        With no plan installed (the default), ``exchange`` runs the exact
        reliable code path — bit-identical messages, statistics and results.
        A plan whose drop and delay rates are zero is equally bit-identical;
        only actual drop/delay decisions change the recorded rounds.
        """
        previous = self._fault_plan
        self._fault_plan = plan
        return previous

    @property
    def fault_plan(self) -> Optional[Any]:
        """The installed :class:`~repro.comm.faults.FaultPlan` (or ``None``)."""
        return self._fault_plan

    def drain_lost(self) -> List[Message]:
        """Return (and clear) the messages lost past the retry budget since
        the last drain.  The pipeline's robustness policy folds their mass
        into the senders' residual stores."""
        lost = self._lost
        self._lost = []
        return lost

    def resize(self, num_workers: int) -> None:
        """Adopt a new worker count (elastic membership transition).

        Ranks are contiguous ``0..num_workers-1`` after the call; the
        synchroniser applying the membership event remaps its own per-rank
        state (see :meth:`~repro.core.base.GradientSynchronizer.poll_membership`).
        Must be called between steps: undrained lost messages indicate the
        previous step's loss accounting was skipped.
        """
        if num_workers <= 0:
            raise ValueError("a cluster needs at least one worker")
        if self._lost:
            raise RuntimeError(
                "cannot resize the cluster with undrained lost messages; "
                "fold their mass into the residual path first (drain_lost)")
        self._num_workers = int(num_workers)
        self._stats = CommStats(num_workers=self._num_workers)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        return self._num_workers

    @property
    def ranks(self) -> range:
        return range(self._num_workers)

    @property
    def stats(self) -> CommStats:
        return self._stats

    def reset_stats(self) -> CommStats:
        """Reset accounting and return the statistics accumulated so far."""
        old = self._stats
        self._stats = CommStats(num_workers=self._num_workers)
        return old

    # ------------------------------------------------------------------
    # message passing
    # ------------------------------------------------------------------
    def exchange(self, messages: Sequence[Message]) -> Dict[int, List[Message]]:
        """Deliver one synchronous round of messages.

        Returns the inbox of every worker that received something:
        ``{dst_rank: [messages in arrival order]}``.  Raises if any rank is
        out of range or a worker messages itself (local data movement is
        free and must not be modelled as communication).

        NumPy array payloads are delivered as read-only views (see
        :func:`freeze_payload`): peers never share writable memory, so a
        receiver mutating a received array raises instead of silently
        corrupting the sender's state.

        With a message-faulting :class:`~repro.comm.faults.FaultPlan`
        installed, delivery attempts can drop or arrive late; undelivered
        messages are retried under the plan's retry policy, with every
        attempt, backoff idle round and late arrival billed as extra
        recorded rounds.  Past the budget, ``lossy`` messages are parked
        for :meth:`drain_lost` and everything else is force-delivered.
        """
        plan = self._fault_plan
        if plan is not None and plan.injects_message_faults:
            return self._exchange_with_faults(messages)
        transfers = []
        inboxes: Dict[int, List[Message]] = {}
        for message in messages:
            self._admit(message)
            transfers.append((message.src, message.dst, float(message.size)))
            inboxes.setdefault(message.dst, []).append(message)
        if not transfers:
            return {}
        self._stats.record_round(transfers)
        self._round_counter += 1
        return inboxes

    def _admit(self, message: Message) -> None:
        """Validate, price and freeze one outgoing message (both exchange
        paths share this, so a faulted exchange admits bit-identical
        messages)."""
        self._check_rank(message.src)
        self._check_rank(message.dst)
        if message.src == message.dst:
            raise ValueError("workers must not send messages to themselves")
        if self._pricer is not None and not message.size_final:
            priced = float(self._pricer(message))
            if not math.isfinite(priced) or priced < 0.0:
                raise ValueError(
                    f"pricer returned invalid message size {priced!r} for "
                    f"{message.src}->{message.dst} (tag {message.tag!r})")
            message.size = priced
        message.payload = freeze_payload(message.payload)

    def _exchange_with_faults(self, messages: Sequence[Message]) -> Dict[int, List[Message]]:
        """One logical round under the installed fault plan.

        Each pending message is attempted once per retry round; its fate
        (deliver on time, deliver ``lateness`` rounds late, or drop — which
        includes timing out past the plan's ``timeout_rounds``) is a pure
        function of the plan's seed, the cluster's monotonic round counter,
        the attempt number and the message's ``(src, dst, tag)``.  Billing
        is honest: the nominal round is always recorded, every retry
        attempt and every distinct lateness adds a recorded round, and the
        retry policy's backoff idles are recorded as empty (latency-only)
        rounds.  Inboxes preserve submission order for delivered messages,
        so downstream merge order matches the reliable path.
        """
        plan = self._fault_plan
        retry = getattr(plan, "retry", None)
        if retry is None:
            from ..core.pipeline import RetryPolicy
            retry = RetryPolicy()
        admitted: List[Message] = []
        for message in messages:
            self._admit(message)
            admitted.append(message)
        if not admitted:
            return {}
        base_round = self._round_counter
        delivered: set = set()
        pending: List[int] = list(range(len(admitted)))
        rounds_recorded = 0

        def record(indices: Sequence[int]) -> None:
            nonlocal rounds_recorded
            self._stats.record_round(
                [(admitted[i].src, admitted[i].dst, float(admitted[i].size))
                 for i in indices])
            rounds_recorded += 1

        attempt = 1
        max_attempts = 1 + retry.max_retries
        while pending and attempt <= max_attempts:
            if attempt > 1:
                for _ in range(retry.idle_rounds(attempt)):
                    record(())
                self._stats.retried_messages += len(pending)
            on_time: List[int] = []
            late: Dict[int, List[int]] = {}
            still: List[int] = []
            for index in pending:
                message = admitted[index]
                fate, lateness = plan.message_fate(
                    base_round, attempt, message.src, message.dst, message.tag)
                if fate == "drop":
                    self._stats.dropped_messages += 1
                    still.append(index)
                elif lateness == 0:
                    on_time.append(index)
                else:
                    self._stats.delayed_messages += 1
                    late.setdefault(lateness, []).append(index)
            record(on_time)
            delivered.update(on_time)
            if late:
                for offset in range(1, max(late) + 1):
                    bucket = late.get(offset, [])
                    record(bucket)
                    delivered.update(bucket)
            pending = still
            attempt += 1
        if pending:
            lost = [i for i in pending if admitted[i].lossy]
            forced = [i for i in pending if not admitted[i].lossy]
            self._lost.extend(admitted[i] for i in lost)
            self._stats.lost_messages += len(lost)
            if forced:
                record(forced)
                delivered.update(forced)
                self._stats.forced_deliveries += len(forced)
        self._stats.fault_extra_rounds += rounds_recorded - 1
        self._round_counter += rounds_recorded
        inboxes: Dict[int, List[Message]] = {}
        for index, message in enumerate(admitted):
            if index in delivered:
                inboxes.setdefault(message.dst, []).append(message)
        return inboxes

    def sendrecv(self, sends: Dict[int, tuple[int, Any]]) -> Dict[int, Dict[int, Any]]:
        """Convenience wrapper for one round of pairwise sends.

        ``sends`` maps source rank to ``(dst, payload)``; the return value
        maps each destination rank to its inbox, keyed by source rank:
        ``{dst: {src: payload}}``.  Keying by source keeps a single received
        payload distinguishable from a payload that *is* a list — returning
        the bare payload for one sender and a list for several (the previous
        behaviour) made the two cases ambiguous.
        """
        messages = [Message(src=s, dst=d, payload=p) for s, (d, p) in sends.items()]
        inboxes = self.exchange(messages)
        return {
            dst: {message.src: message.payload for message in inbox}
            for dst, inbox in inboxes.items()
        }

    # ------------------------------------------------------------------
    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self._num_workers:
            raise ValueError(
                f"worker rank {rank} out of range [0, {self._num_workers})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimulatedCluster(num_workers={self._num_workers})"
