"""Deterministic fault and heterogeneity injection for the simulated cluster.

Every benchmark before this layer assumed a fixed worker count over a
perfectly reliable, uniform network — the one regime production never runs
in.  :class:`FaultPlan` describes the departures from that ideal:

* **message faults** — per-message drop and delay probabilities (a delay
  past ``timeout_rounds`` is a timeout and handled like a drop),
* **stragglers** — per-(worker, iteration) compute slowdown factors drawn
  from a seeded distribution,
* **heterogeneous links** — per-worker and per-link
  :class:`~repro.comm.network.NetworkProfile` overrides feeding the
  straggler-aware timing model,
* **elastic membership** — crash/join :class:`MembershipEvent`\\ s keyed by
  iteration, applied by synchronisers between steps
  (:meth:`~repro.core.base.GradientSynchronizer.poll_membership`).

A plan is installed on a cluster with
:meth:`~repro.comm.cluster.SimulatedCluster.install_fault_plan`, mirroring
``install_pricer``.  With no plan installed, ``exchange`` runs the exact
pre-fault code path — bit-identical messages, statistics and results (gated
in ``tests/test_faults.py``).

Determinism
-----------
Every random decision is a pure function of ``(seed, key)``: the key of a
message fate includes the cluster's monotonic round counter, the retry
attempt and the message's ``(src, dst, tag)``; straggler factors are keyed
by ``(iteration, worker)``.  Two runs of the same seeded scenario therefore
make identical drop/delay/straggler decisions, independent of Python hash
randomisation and of how many random values other components consume.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .network import HeterogeneousNetwork, NetworkProfile

__all__ = [
    "MembershipEvent",
    "FaultPlan",
    "membership_transition",
]


@dataclass(frozen=True)
class MembershipEvent:
    """One elastic-membership event, applied *before* the given iteration.

    Parameters
    ----------
    iteration:
        0-based iteration index the event precedes: a synchroniser polling
        membership before running step ``iteration`` applies it then.
    kind:
        ``"crash"`` (a worker leaves) or ``"join"`` (one worker joins,
        taking the next rank).
    worker:
        Rank of the crashing worker; ``None`` crashes the highest rank.
        Ignored for joins (the joiner always takes rank ``P``).
    """

    iteration: int
    kind: str
    worker: Optional[int] = None

    def __post_init__(self) -> None:
        if self.iteration < 0:
            raise ValueError("event iteration must be non-negative")
        if self.kind not in ("crash", "join"):
            raise ValueError(f"event kind must be 'crash' or 'join', got {self.kind!r}")
        if self.worker is not None and self.worker < 0:
            raise ValueError("event worker must be a non-negative rank")

    def describe(self) -> Dict[str, Any]:
        """JSON-friendly event description (trace-marker / report args)."""
        return {"iteration": self.iteration, "kind": self.kind,
                "worker": self.worker}


def membership_transition(num_workers: int,
                          event: MembershipEvent) -> Tuple[int, Dict[int, int]]:
    """Resolve ``event`` against the current worker count.

    Returns ``(new_num_workers, mapping)`` where ``mapping`` sends every
    *old* rank to the new rank that inherits its state:

    * **join** — the identity over the old ranks; the joiner takes rank
      ``P`` with empty state.
    * **crash** — survivors are renumbered contiguously (order preserved);
      the crashed rank maps to the new rank of its cyclic successor, which
      inherits its residual store so no gradient mass leaves the system.
    """
    if event.kind == "join":
        return num_workers + 1, {rank: rank for rank in range(num_workers)}
    crashed = num_workers - 1 if event.worker is None else event.worker
    if not 0 <= crashed < num_workers:
        raise ValueError(f"cannot crash rank {crashed} of {num_workers} workers")
    if num_workers <= 1:
        raise ValueError("cannot crash the last remaining worker")
    survivors = [rank for rank in range(num_workers) if rank != crashed]
    mapping = {old: new for new, old in enumerate(survivors)}
    successor = survivors[crashed % len(survivors)]
    mapping[crashed] = mapping[successor]
    return num_workers - 1, mapping


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic description of one fault scenario.

    Parameters
    ----------
    seed:
        Root seed of every random decision the plan makes.
    drop_rate:
        Per-delivery-attempt probability in ``[0, 1]`` that a message is
        dropped on the wire.  Dropped messages are retried under the
        installed :class:`~repro.core.pipeline.RetryPolicy`; messages still
        undelivered past the retry budget are *lost* if the sender marked
        them ``lossy`` (their mass is folded into the sender's residual)
        and force-delivered over the reliable transport otherwise.
    delay_rate:
        Per-attempt probability that a delivered message is late.  The
        lateness is drawn uniformly from ``1..max_delay_rounds`` extra
        rounds; a lateness above ``timeout_rounds`` counts as a timeout and
        is handled exactly like a drop.
    max_delay_rounds:
        Upper bound (inclusive) of the sampled lateness.
    timeout_rounds:
        Largest lateness the receiver waits out.  Late-but-within-timeout
        messages arrive in honestly billed extra rounds.
    straggler_rate:
        Per-(worker, iteration) probability that a worker straggles.
    straggler_slowdown:
        Upper bound of the straggler severity: a straggling worker's
        compute slowdown factor is drawn uniformly from
        ``[1, straggler_slowdown]``.
    worker_profiles:
        Per-worker :class:`~repro.comm.network.NetworkProfile` overrides
        (rank -> profile) describing heterogeneous NICs.
    link_profiles:
        Per-directed-link overrides (``(src, dst)`` -> profile).  The
        timing model folds them conservatively into the destination's
        ingress profile (element-wise max of alpha and beta).
    events:
        :class:`MembershipEvent` schedule (crashes and joins).
    retry:
        The :class:`~repro.core.pipeline.RetryPolicy` governing redelivery;
        ``None`` uses that policy's defaults.
    """

    seed: int = 0
    drop_rate: float = 0.0
    delay_rate: float = 0.0
    max_delay_rounds: int = 1
    timeout_rounds: int = 1
    straggler_rate: float = 0.0
    straggler_slowdown: float = 4.0
    worker_profiles: Mapping[int, NetworkProfile] = field(default_factory=dict)
    link_profiles: Mapping[Tuple[int, int], NetworkProfile] = field(default_factory=dict)
    events: Sequence[MembershipEvent] = ()
    retry: Optional[Any] = None

    def __post_init__(self) -> None:
        for name in ("drop_rate", "delay_rate", "straggler_rate"):
            value = getattr(self, name)
            if not (math.isfinite(value) and 0.0 <= value <= 1.0):
                raise ValueError(f"{name} must be a probability in [0, 1], got {value!r}")
        if self.max_delay_rounds < 1:
            raise ValueError("max_delay_rounds must be at least 1")
        if self.timeout_rounds < 0:
            raise ValueError("timeout_rounds must be non-negative")
        if not (math.isfinite(self.straggler_slowdown) and self.straggler_slowdown >= 1.0):
            raise ValueError("straggler_slowdown must be a finite factor >= 1")
        for rank in self.worker_profiles:
            if rank < 0:
                raise ValueError("worker_profiles keys must be non-negative ranks")
        for src, dst in self.link_profiles:
            if src < 0 or dst < 0:
                raise ValueError("link_profiles keys must be (src, dst) rank pairs")

    # ------------------------------------------------------------------
    # deterministic sampling
    # ------------------------------------------------------------------
    def _rng(self, *key: Any) -> np.random.Generator:
        """A generator keyed purely by ``(seed, key)`` — stable across runs
        and independent of call order."""
        entropy: List[int] = [int(self.seed) & 0xFFFFFFFF]
        for part in key:
            if isinstance(part, str):
                part = zlib.crc32(part.encode("utf-8"))
            entropy.append(int(part) & 0xFFFFFFFF)
        return np.random.default_rng(np.random.SeedSequence(entropy))

    def message_fate(self, round_index: int, attempt: int, src: int, dst: int,
                     tag: str) -> Tuple[str, int]:
        """Fate of one delivery attempt: ``("deliver", extra_rounds)`` or
        ``("drop", 0)`` (timeouts are reported as drops)."""
        rng = self._rng("msg", round_index, attempt, src, dst, tag)
        u = rng.random()
        if u < self.drop_rate:
            return "drop", 0
        if u < self.drop_rate + self.delay_rate:
            lateness = 1 + int(rng.integers(self.max_delay_rounds))
            if lateness > self.timeout_rounds:
                return "drop", 0  # timed out waiting
            return "deliver", lateness
        return "deliver", 0

    def straggler_factor(self, iteration: int, worker: int) -> float:
        """Compute slowdown factor of ``worker`` at ``iteration`` (1.0 for
        non-stragglers)."""
        if self.straggler_rate == 0.0:
            return 1.0
        rng = self._rng("straggle", iteration, worker)
        if rng.random() >= self.straggler_rate:
            return 1.0
        return 1.0 + rng.random() * (self.straggler_slowdown - 1.0)

    def straggler_factors(self, iteration: int, num_workers: int) -> List[float]:
        """Per-worker slowdown factors for one iteration."""
        return [self.straggler_factor(iteration, worker)
                for worker in range(num_workers)]

    # ------------------------------------------------------------------
    # heterogeneity and membership
    # ------------------------------------------------------------------
    def heterogeneous_network(self, num_workers: int,
                              default: NetworkProfile) -> HeterogeneousNetwork:
        """Per-worker ingress profiles implied by this plan.

        A worker's profile is its ``worker_profiles`` override (or
        ``default``); every ``link_profiles`` entry targeting the worker
        worsens it conservatively — element-wise maximum of alpha and beta
        — because in the bulk-synchronous model a round is paced by the
        slowest path into each receiver.
        """
        overrides: Dict[int, NetworkProfile] = {}
        for worker in range(num_workers):
            profile = self.worker_profiles.get(worker, default)
            for (src, dst), link in self.link_profiles.items():
                if dst == worker:
                    profile = NetworkProfile(
                        name=f"{profile.name}-ingress",
                        alpha=max(profile.alpha, link.alpha),
                        beta=max(profile.beta, link.beta),
                    )
            if profile is not default:
                overrides[worker] = profile
        return HeterogeneousNetwork(default=default, overrides=overrides)

    def events_at(self, iteration: int) -> List[MembershipEvent]:
        """Membership events scheduled before step ``iteration``, in
        declaration order."""
        return [event for event in self.events if event.iteration == iteration]

    @property
    def injects_message_faults(self) -> bool:
        """True when any exchange can deviate from the reliable path."""
        return self.drop_rate > 0.0 or self.delay_rate > 0.0
