"""Training history and evaluation metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["IterationRecord", "EpochRecord", "TrainingHistory"]


@dataclass
class IterationRecord:
    """One synchronised training iteration.

    ``compute_time`` and ``communication_time`` stay the full quantities;
    ``hidden_comm_time`` is the communication an overlapped bucketed
    execution hid behind the backward pass (zero for flat runs), so
    :attr:`total_time` reports the overlapped wall-clock.
    """

    iteration: int
    epoch: int
    loss: float
    compute_time: float
    communication_time: float
    hidden_comm_time: float = 0.0

    @property
    def total_time(self) -> float:
        return self.compute_time + self.communication_time - self.hidden_comm_time


@dataclass
class EpochRecord:
    """Aggregated metrics of one epoch."""

    epoch: int
    train_loss: float
    eval_loss: float
    eval_metric: float
    metric_name: str
    epoch_time: float
    cumulative_time: float
    communication_time: float
    compute_time: float
    #: Communication hidden behind backward compute this epoch (already
    #: subtracted from ``epoch_time``).
    hidden_comm_time: float = 0.0


@dataclass
class TrainingHistory:
    """Full record of one distributed training run."""

    method: str = ""
    case: str = ""
    iterations: List[IterationRecord] = field(default_factory=list)
    epochs: List[EpochRecord] = field(default_factory=list)

    # ------------------------------------------------------------------
    def add_iteration(self, record: IterationRecord) -> None:
        self.iterations.append(record)

    def add_epoch(self, record: EpochRecord) -> None:
        self.epochs.append(record)

    # ------------------------------------------------------------------
    @property
    def total_time(self) -> float:
        """Cumulative simulated training time."""
        if self.epochs:
            return self.epochs[-1].cumulative_time
        return sum(record.total_time for record in self.iterations)

    @property
    def total_communication_time(self) -> float:
        return sum(record.communication_time for record in self.iterations)

    @property
    def total_compute_time(self) -> float:
        return sum(record.compute_time for record in self.iterations)

    @property
    def total_hidden_comm_time(self) -> float:
        """Communication hidden behind compute across the whole run."""
        return sum(record.hidden_comm_time for record in self.iterations)

    @property
    def final_metric(self) -> float:
        if not self.epochs:
            raise ValueError("no epochs recorded")
        return self.epochs[-1].eval_metric

    @property
    def final_eval_loss(self) -> float:
        if not self.epochs:
            raise ValueError("no epochs recorded")
        return self.epochs[-1].eval_loss

    def mean_iteration_time(self) -> float:
        if not self.iterations:
            raise ValueError("no iterations recorded")
        return sum(record.total_time for record in self.iterations) / len(self.iterations)

    def mean_communication_time(self) -> float:
        if not self.iterations:
            raise ValueError("no iterations recorded")
        return self.total_communication_time / len(self.iterations)

    def mean_compute_time(self) -> float:
        if not self.iterations:
            raise ValueError("no iterations recorded")
        return self.total_compute_time / len(self.iterations)

    def time_to_metric(self, threshold: float, higher_is_better: bool = True) -> Optional[float]:
        """Cumulative time of the first epoch whose evaluation metric reaches
        ``threshold`` (``None`` if never reached)."""
        for record in self.epochs:
            reached = (record.eval_metric >= threshold if higher_is_better
                       else record.eval_metric <= threshold)
            if reached:
                return record.cumulative_time
        return None

    def metric_curve(self) -> Dict[str, List[float]]:
        """``{"time": [...], "metric": [...], "loss": [...]}`` per epoch."""
        return {
            "time": [record.cumulative_time for record in self.epochs],
            "metric": [record.eval_metric for record in self.epochs],
            "loss": [record.eval_loss for record in self.epochs],
        }
