"""The seven distributed deep-learning cases of the evaluation (Table II).

Each :class:`CaseSpec` bundles everything the experiments need: a model
factory, a synthetic dataset generator standing in for the paper's dataset, a
compute-time profile, the paper's model size (used to scale the bandwidth
term of the simulated timing) and sensible optimisation hyper-parameters.

The models are scaled-down versions of the paper's (see
:mod:`repro.nn.models`); ``scale`` lets the benchmarks shrink them further
when many configurations must be compared in one run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from ..data.datasets import Dataset, TaskType, train_test_split
from ..data.synthetic import (
    synthetic_image_classification,
    synthetic_image_regression,
    synthetic_language_modeling,
    synthetic_masked_lm,
    synthetic_text_classification,
)
from ..nn.models import (
    build_lstm_classifier,
    build_lstm_language_model,
    build_regression_cnn,
    build_resnet,
    build_transformer_mlm,
    build_vgg,
)
from ..nn.module import Module
from .timing import ComputeProfile

__all__ = ["CaseSpec", "CASES", "get_case", "case_names"]

#: Vocabulary shared by the sequence cases.
_VOCAB = 64
#: Sequence length shared by the sequence cases.
_SEQ_LEN = 16


@dataclass
class CaseSpec:
    """One evaluation case: model, dataset, timing and hyper-parameters."""

    case_id: int
    name: str
    task: TaskType
    model_name: str
    dataset_name: str
    model_factory: Callable[[int], Module]
    dataset_factory: Callable[[int, int], Dataset]
    compute_profile: ComputeProfile
    learning_rate: float = 0.1
    momentum: float = 0.9
    batch_size: int = 32
    metric_name: str = "accuracy"
    higher_is_better: bool = True

    # ------------------------------------------------------------------
    def build_model(self, seed: int = 0) -> Module:
        return self.model_factory(seed)

    def build_datasets(self, num_samples: int = 512, seed: int = 0,
                       test_fraction: float = 0.25) -> Tuple[Dataset, Dataset]:
        dataset = self.dataset_factory(num_samples, seed)
        return train_test_split(dataset, test_fraction=test_fraction, seed=seed)

    def describe(self) -> str:
        return f"Case {self.case_id}: {self.model_name} on {self.dataset_name}"


def _case1_model(seed: int) -> Module:
    return build_vgg("vgg16", image_size=16, num_classes=10, seed=seed)


def _case2_model(seed: int) -> Module:
    return build_vgg("vgg19", image_size=16, num_classes=20, seed=seed)


def _case3_model(seed: int) -> Module:
    return build_resnet((2, 2, 2), num_classes=20, base_width=8, seed=seed)


def _case4_model(seed: int) -> Module:
    return build_regression_cnn(image_size=16, seed=seed)


def _case5_model(seed: int) -> Module:
    return build_lstm_classifier(vocab_size=_VOCAB, num_classes=2, embedding_dim=16,
                                 hidden_dim=32, num_layers=2, seed=seed)


def _case6_model(seed: int) -> Module:
    return build_lstm_language_model(vocab_size=_VOCAB, embedding_dim=16, hidden_dim=32,
                                     num_layers=2, seed=seed)


def _case7_model(seed: int) -> Module:
    return build_transformer_mlm(vocab_size=_VOCAB, max_length=_SEQ_LEN, model_dim=32,
                                 num_heads=4, num_layers=2, seed=seed)


CASES: Dict[int, CaseSpec] = {
    1: CaseSpec(
        case_id=1, name="vgg16-cifar10", task=TaskType.IMAGE_CLASSIFICATION,
        model_name="VGG-16", dataset_name="CIFAR-10 (synthetic stand-in)",
        model_factory=_case1_model,
        dataset_factory=lambda n, seed: synthetic_image_classification(
            num_samples=n, num_classes=10, image_size=16, seed=seed, name="cifar10-like"),
        compute_profile=ComputeProfile(compute_time_per_update=0.060,
                                       paper_parameters=14.7e6),
        learning_rate=0.05, momentum=0.5, batch_size=32,
    ),
    2: CaseSpec(
        case_id=2, name="vgg19-cifar100", task=TaskType.IMAGE_CLASSIFICATION,
        model_name="VGG-19", dataset_name="CIFAR-100 (synthetic stand-in)",
        model_factory=_case2_model,
        dataset_factory=lambda n, seed: synthetic_image_classification(
            num_samples=n, num_classes=20, image_size=16, seed=seed, name="cifar100-like"),
        compute_profile=ComputeProfile(compute_time_per_update=0.075,
                                       paper_parameters=20.1e6),
        learning_rate=0.05, momentum=0.5, batch_size=32,
    ),
    3: CaseSpec(
        case_id=3, name="resnet50-imagenet", task=TaskType.IMAGE_CLASSIFICATION,
        model_name="ResNet-50", dataset_name="ImageNet (synthetic stand-in)",
        model_factory=_case3_model,
        dataset_factory=lambda n, seed: synthetic_image_classification(
            num_samples=n, num_classes=20, image_size=16, seed=seed, name="imagenet-like"),
        compute_profile=ComputeProfile(compute_time_per_update=0.110,
                                       paper_parameters=23.5e6),
        learning_rate=0.05, momentum=0.5, batch_size=32,
    ),
    4: CaseSpec(
        case_id=4, name="vgg11-house", task=TaskType.IMAGE_REGRESSION,
        model_name="VGG-11", dataset_name="House (synthetic stand-in)",
        model_factory=_case4_model,
        dataset_factory=lambda n, seed: synthetic_image_regression(
            num_samples=n, image_size=16, seed=seed, name="house-like"),
        compute_profile=ComputeProfile(compute_time_per_update=0.045,
                                       paper_parameters=9.2e6),
        learning_rate=0.01, momentum=0.9, batch_size=32,
        metric_name="loss", higher_is_better=False,
    ),
    5: CaseSpec(
        case_id=5, name="lstm-imdb", task=TaskType.TEXT_CLASSIFICATION,
        model_name="LSTM-IMDB", dataset_name="IMDB (synthetic stand-in)",
        model_factory=_case5_model,
        dataset_factory=lambda n, seed: synthetic_text_classification(
            num_samples=n, vocab_size=_VOCAB, sequence_length=_SEQ_LEN, num_classes=2,
            seed=seed, name="imdb-like"),
        compute_profile=ComputeProfile(compute_time_per_update=0.130,
                                       paper_parameters=35.2e6),
        learning_rate=0.5, momentum=0.5, batch_size=32,
    ),
    6: CaseSpec(
        case_id=6, name="lstm-ptb", task=TaskType.LANGUAGE_MODELING,
        model_name="LSTM-PTB", dataset_name="PTB (synthetic stand-in)",
        model_factory=_case6_model,
        dataset_factory=lambda n, seed: synthetic_language_modeling(
            num_samples=n, vocab_size=_VOCAB, sequence_length=_SEQ_LEN, seed=seed,
            name="ptb-like"),
        compute_profile=ComputeProfile(compute_time_per_update=0.300,
                                       paper_parameters=66.0e6),
        learning_rate=0.5, momentum=0.5, batch_size=32,
        metric_name="loss", higher_is_better=False,
    ),
    7: CaseSpec(
        case_id=7, name="bert-wikipedia", task=TaskType.MASKED_LM,
        model_name="BERT", dataset_name="Wikipedia (synthetic stand-in)",
        model_factory=_case7_model,
        dataset_factory=lambda n, seed: synthetic_masked_lm(
            num_samples=n, vocab_size=_VOCAB, sequence_length=_SEQ_LEN, seed=seed,
            name="wikipedia-like"),
        compute_profile=ComputeProfile(compute_time_per_update=0.330,
                                       paper_parameters=133.5e6),
        learning_rate=0.3, momentum=0.5, batch_size=32,
        metric_name="loss", higher_is_better=False,
    ),
}


def get_case(case_id: int) -> CaseSpec:
    """Look up an evaluation case by its Table II number."""
    try:
        return CASES[case_id]
    except KeyError:
        raise ValueError(f"unknown case {case_id}; valid cases are {sorted(CASES)}") from None


def case_names() -> Dict[int, str]:
    return {case_id: spec.describe() for case_id, spec in CASES.items()}
