"""Simulated per-iteration timing.

The paper reports wall-clock quantities (per-update time, training time to a
target accuracy) measured on its GPU clusters.  This repository replaces
wall-clock measurement with the same alpha-beta model the paper uses for its
analysis:

* **communication time** comes from the *measured* rounds and per-round
  busiest-receiver volumes of the simulated cluster, priced by a
  :class:`~repro.comm.network.NetworkProfile`;
* **computation time** is a per-case constant (the paper's compute bars in
  Fig. 8 are flat across communication methods, so a constant profile
  preserves every comparison);
* because the NumPy models are orders of magnitude smaller than the paper's
  (a scaled-down VGG-16 here has ~10^5 parameters, the real one 14.7M), the
  bandwidth term is scaled by ``paper_parameters / model_parameters``.  The
  communication algorithms' volumes are linear in the gradient size, so this
  rescaling reproduces the latency/bandwidth balance of the full-size model
  without simulating 10^7-element vectors.

Compute/communication overlap
-----------------------------
A flat synchronisation cannot start communicating before the whole backward
pass has produced the full gradient, so its iteration time is the plain sum
``compute + comm``.  Per-layer bucketed synchronisation can do better: the
gradient of the *last* layer is ready first (backward runs the layers in
reverse), so its bucket's exchange can start while the backward pass is still
working through the earlier layers — the wait-free backpropagation insight
behind MG-WFBP-style schedulers.  :func:`overlap_timeline` models exactly
that pipeline: buckets communicate in backward-completion order over a single
shared network channel, each bucket's exchange starting as soon as its
backward slice has finished *and* the channel is free.  The per-bucket
backward slices come from :meth:`ComputeProfile.bucket_backward_times`
(proportional to parameter counts, or user-supplied measurements), and
:func:`iteration_time` switches to the overlap model whenever per-bucket
communication statistics are passed — without them it reproduces the
historical ``compute + comm`` sum bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from ..comm.network import HeterogeneousNetwork, NetworkProfile
from ..comm.stats import CommStats

__all__ = [
    "ComputeProfile",
    "IterationTiming",
    "OverlapTimeline",
    "communication_time",
    "iteration_time",
    "overlap_timeline",
]


@dataclass(frozen=True)
class ComputeProfile:
    """Computation-side timing of one training case.

    Parameters
    ----------
    compute_time_per_update:
        Seconds of forward + backward + optimiser work per iteration
        (calibrated to the paper's Fig. 8 computation bars).
    paper_parameters:
        Parameter count of the model the paper trains for this case.
    backward_fraction:
        Share of ``compute_time_per_update`` spent in the backward pass —
        the only part of an iteration that overlaps with per-bucket
        communication (gradients stream out layer by layer as backward
        produces them; forward and the optimiser step cannot hide any
        communication).  The default 0.7 reflects the usual ~2:1
        backward:forward FLOP ratio of dense training.
    bucket_backward_times:
        Optional measured per-bucket backward times, in *forward (layer)
        order*, overriding the proportional-split model of
        :meth:`bucket_backward_times`.  When given, their sum replaces
        ``backward_fraction * compute_time_per_update`` as the backward
        time, so measurements and the aggregate stay consistent.
    """

    compute_time_per_update: float
    paper_parameters: float
    backward_fraction: float = 0.7
    bucket_backward_times: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.compute_time_per_update < 0:
            raise ValueError("compute_time_per_update must be non-negative")
        if self.paper_parameters <= 0:
            raise ValueError("paper_parameters must be positive")
        if not 0.0 <= self.backward_fraction <= 1.0:
            raise ValueError("backward_fraction must be in [0, 1]")
        if self.bucket_backward_times is not None:
            times = tuple(float(t) for t in self.bucket_backward_times)
            if not times:
                raise ValueError("bucket_backward_times must not be empty")
            if any(t < 0 for t in times):
                raise ValueError("bucket backward times must be non-negative")
            object.__setattr__(self, "bucket_backward_times", times)

    def volume_scale(self, model_parameters: int) -> float:
        """Factor by which measured communication volumes are scaled so the
        bandwidth term corresponds to the paper's model size."""
        if model_parameters <= 0:
            raise ValueError("model_parameters must be positive")
        return float(self.paper_parameters) / float(model_parameters)

    # ------------------------------------------------------------------
    # the per-bucket backward-compute model
    # ------------------------------------------------------------------
    @property
    def backward_time(self) -> float:
        """Seconds of backward-pass work per iteration (the overlappable
        part of :attr:`compute_time_per_update`)."""
        if self.bucket_backward_times is not None:
            return float(sum(self.bucket_backward_times))
        return self.compute_time_per_update * self.backward_fraction

    @property
    def non_overlap_time(self) -> float:
        """Seconds per iteration that can never hide communication (forward
        pass, optimiser step).  Clamped at zero when user-supplied bucket
        measurements exceed the aggregate compute time."""
        return max(0.0, self.compute_time_per_update - self.backward_time)

    def with_bucket_times(self, times: Sequence[float]) -> "ComputeProfile":
        """A copy of this profile with measured per-bucket backward times."""
        return ComputeProfile(
            compute_time_per_update=self.compute_time_per_update,
            paper_parameters=self.paper_parameters,
            backward_fraction=self.backward_fraction,
            bucket_backward_times=tuple(float(t) for t in times),
        )

    def bucket_backward_times_for(self, bucket_sizes: Sequence[int]) -> List[float]:
        """Backward time of every bucket, in the order of ``bucket_sizes``
        (forward / layer order, matching the bucket layout).

        User-supplied :attr:`bucket_backward_times` are used verbatim (their
        count must match); otherwise the backward time is split across the
        buckets proportionally to their parameter counts — backward work per
        layer is dominated by the same matmuls whose weights the bucket
        carries, so parameter count is the natural first-order proxy.
        """
        sizes = [int(size) for size in bucket_sizes]
        if not sizes:
            raise ValueError("bucket_sizes must not be empty")
        if any(size <= 0 for size in sizes):
            raise ValueError("bucket sizes must be positive")
        if self.bucket_backward_times is not None:
            if len(self.bucket_backward_times) != len(sizes):
                raise ValueError(
                    f"profile carries {len(self.bucket_backward_times)} measured bucket "
                    f"times but the layout has {len(sizes)} buckets")
            return list(self.bucket_backward_times)
        total = float(sum(sizes))
        backward = self.backward_time
        return [backward * size / total for size in sizes]


@dataclass(frozen=True)
class OverlapTimeline:
    """The simulated timeline of one overlapped backward + exchange pipeline.

    All sequences are indexed in **backward execution order**: entry 0 is
    the first bucket whose backward slice completes (the *last* layers of
    the model).  The timeline follows the standard wait-free
    backpropagation recurrence over a single communication channel::

        backward_finish[i] = backward_finish[i-1] + compute_times[i]
        comm_start[i]      = max(backward_finish[i], comm_finish[i-1])
        comm_finish[i]     = comm_start[i] + comm_times[i]

    so each bucket's exchange begins as soon as its gradients exist and the
    channel is free, and :attr:`critical_path` is when the last exchange
    drains.  With a single bucket this degenerates to
    ``compute + comm`` — the flat, non-overlapped timing.
    """

    #: Per-bucket backward-slice durations (backward order).
    compute_times: Tuple[float, ...]
    #: Per-bucket communication durations (backward order).
    comm_times: Tuple[float, ...]
    #: When each bucket's backward slice completes.
    backward_finish: Tuple[float, ...]
    #: When each bucket's exchange starts (channel + gradient both ready).
    comm_start: Tuple[float, ...]
    #: When each bucket's exchange completes.
    comm_finish: Tuple[float, ...]

    @property
    def num_buckets(self) -> int:
        return len(self.compute_times)

    @property
    def backward_total(self) -> float:
        """Total backward compute time (the pipeline's compute leg)."""
        return self.backward_finish[-1]

    @property
    def comm_total(self) -> float:
        """Total communication time (what a sequential execution would pay)."""
        return float(sum(self.comm_times))

    @property
    def critical_path(self) -> float:
        """End-to-end duration of the overlapped pipeline: from the first
        backward slice starting to the last exchange draining."""
        return self.comm_finish[-1]

    @property
    def exposed_comm(self) -> float:
        """Communication time *not* hidden behind backward compute — the
        tail (and any stalls) that extend the iteration beyond the backward
        pass itself."""
        return self.critical_path - self.backward_total

    @property
    def hidden_comm(self) -> float:
        """Communication time hidden behind backward compute: the overlap
        payoff, ``comm_total - exposed_comm`` (zero when nothing overlaps,
        ``comm_total`` under full overlap)."""
        return self.comm_total - self.exposed_comm

    @property
    def overlap_ratio(self) -> float:
        """Fraction of communication hidden behind compute, in [0, 1]."""
        total = self.comm_total
        return self.hidden_comm / total if total > 0 else 0.0

    def breakdown(self) -> dict:
        """JSON-friendly critical-path breakdown (for benchmark reports)."""
        return {
            "num_buckets": self.num_buckets,
            "backward_total_s": self.backward_total,
            "comm_total_s": self.comm_total,
            "critical_path_s": self.critical_path,
            "exposed_comm_s": self.exposed_comm,
            "hidden_comm_s": self.hidden_comm,
            "overlap_ratio": self.overlap_ratio,
            "comm_start_s": list(self.comm_start),
            "comm_finish_s": list(self.comm_finish),
        }

    def spans(self) -> List[dict]:
        """The timeline as renderable spans, for the trace replay.

        Every backward slice becomes one span on the ``backward`` track;
        every bucket's exchange is split at :attr:`backward_total` into its
        *hidden* slice (running while backward still computes) and its
        *exposed* slice (extending the iteration past the backward pass) on
        the ``comm`` track.  All backward slices finish by
        ``backward_total`` and the channel never idles afterwards, so the
        hidden/exposed slice totals equal :attr:`hidden_comm` and
        :attr:`exposed_comm` exactly.  Times are seconds from the start of
        the backward pass; buckets keep backward execution order.
        """
        spans: List[dict] = []
        cut = self.backward_total
        for i in range(self.num_buckets):
            finish = self.backward_finish[i]
            spans.append({"track": "backward", "name": f"backward[b{i}]",
                          "kind": "backward",
                          "start_s": finish - self.compute_times[i],
                          "dur_s": self.compute_times[i]})
            start, end = self.comm_start[i], self.comm_finish[i]
            if end <= start:
                continue
            boundary = min(max(start, cut), end)
            if boundary > start:
                spans.append({"track": "comm", "name": f"comm[b{i}]",
                              "kind": "hidden", "start_s": start,
                              "dur_s": boundary - start})
            if end > boundary:
                spans.append({"track": "comm", "name": f"comm[b{i}]",
                              "kind": "exposed", "start_s": boundary,
                              "dur_s": end - boundary})
        return spans


def overlap_timeline(compute_times: Sequence[float],
                     comm_times: Sequence[float]) -> OverlapTimeline:
    """Simulate the overlapped backward + exchange pipeline.

    ``compute_times`` and ``comm_times`` are per-bucket durations in
    **backward execution order** (first entry = last layers of the model).
    Communication is serialised on one channel in that same order — the
    MG-WFBP execution model — and each bucket's exchange starts as soon as
    its backward slice has finished and the channel is free.
    """
    computes = [float(t) for t in compute_times]
    comms = [float(t) for t in comm_times]
    if not computes:
        raise ValueError("at least one bucket is required")
    if len(computes) != len(comms):
        raise ValueError(
            f"compute_times has {len(computes)} buckets but comm_times has "
            f"{len(comms)}")
    if any(t < 0 for t in computes) or any(t < 0 for t in comms):
        raise ValueError("bucket times must be non-negative")
    backward_finish: List[float] = []
    comm_start: List[float] = []
    comm_finish: List[float] = []
    elapsed = 0.0
    channel_free = 0.0
    for compute, comm in zip(computes, comms):
        elapsed += compute
        start = max(elapsed, channel_free)
        channel_free = start + comm
        backward_finish.append(elapsed)
        comm_start.append(start)
        comm_finish.append(channel_free)
    return OverlapTimeline(
        compute_times=tuple(computes),
        comm_times=tuple(comms),
        backward_finish=tuple(backward_finish),
        comm_start=tuple(comm_start),
        comm_finish=tuple(comm_finish),
    )


@dataclass
class IterationTiming:
    """Simulated time of one training iteration.

    ``compute_time`` and ``communication_time`` are always the *full*
    quantities (every compute second, every communication second), so the
    historical decomposition is preserved; ``hidden_comm_time`` is the part
    of communication that an overlapped bucketed execution hid behind the
    backward pass (zero without overlap), and :attr:`total` subtracts it.
    """

    compute_time: float
    communication_time: float
    #: Communication hidden behind backward compute (0 without overlap).
    hidden_comm_time: float = 0.0
    #: The per-bucket timeline, when the overlap model produced this timing.
    timeline: Optional[OverlapTimeline] = None

    @property
    def total(self) -> float:
        return self.compute_time + self.communication_time - self.hidden_comm_time


def communication_time(stats: CommStats,
                       network: Union[NetworkProfile, HeterogeneousNetwork],
                       volume_scale: float = 1.0) -> float:
    """Bulk-synchronous communication time of a synchronisation.

    Under a uniform :class:`~repro.comm.network.NetworkProfile` each round
    costs ``alpha`` plus ``beta`` times the busiest receiver's volume.
    Under a :class:`~repro.comm.network.HeterogeneousNetwork` a round is
    priced as the **maximum over per-worker critical paths** — worker ``w``
    finishes after ``alpha_w + beta_w * received_w`` and the synchronous
    round waits for the slowest — using the per-round per-worker volumes
    the cluster records.  ``volume_scale`` rescales volumes to the paper's
    model size (see module docstring).
    """
    if volume_scale <= 0:
        raise ValueError("volume_scale must be positive")
    if isinstance(network, HeterogeneousNetwork):
        time = sum(network.round_time(received, volume_scale)
                   for received in stats.per_round_received)
        # Rounds merged from stats predating per-round rows (or recorded
        # under a different membership) price at the default latency.
        time += network.default.alpha * max(
            0, stats.rounds - len(stats.per_round_received))
        return time
    time = network.alpha * stats.rounds
    time += network.beta * volume_scale * sum(stats.per_round_max_received)
    return time


def _compute_slowdown(compute_factors: Optional[Sequence[float]]) -> float:
    """The synchronous-training compute slowdown: the slowest worker's
    factor (everyone waits for it), 1.0 without stragglers."""
    if compute_factors is None:
        return 1.0
    factors = [float(factor) for factor in compute_factors]
    if not factors:
        raise ValueError("compute_factors must not be empty")
    if any(factor < 0 for factor in factors):
        raise ValueError("compute factors must be non-negative")
    return max(factors)


def iteration_time(stats: CommStats,
                   network: Union[NetworkProfile, HeterogeneousNetwork],
                   profile: ComputeProfile,
                   model_parameters: Optional[int] = None,
                   compute_factors: Optional[Sequence[float]] = None,
                   bucket_stats: Optional[Sequence[CommStats]] = None,
                   bucket_sizes: Optional[Sequence[int]] = None) -> IterationTiming:
    """Compute + communication time of one iteration.

    ``compute_factors`` are per-worker compute slowdown factors (e.g. from
    :meth:`~repro.comm.faults.FaultPlan.straggler_factors`): synchronous
    training waits for the slowest worker's forward/backward pass, so
    *every* compute term — the flat sum, and each per-bucket backward slice
    of the overlap model alike — scales by their maximum.

    Without ``bucket_stats`` this is the historical non-overlapped model:
    ``total = compute + comm``, bit for bit.  With ``bucket_stats`` (the
    per-bucket :class:`~repro.comm.stats.CommStats` of a bucketed
    synchronisation, in forward/layer order, alongside the matching
    ``bucket_sizes``) the communication is scheduled against the per-bucket
    backward slices via :func:`overlap_timeline`: buckets exchange in
    backward-completion order, each starting as soon as its backward slice
    finishes and the channel frees up, and the hidden communication is
    reported (and subtracted from :attr:`IterationTiming.total`).
    """
    scale = 1.0
    if model_parameters is not None:
        scale = profile.volume_scale(model_parameters)
    slowdown = _compute_slowdown(compute_factors)
    compute = profile.compute_time_per_update * slowdown

    if bucket_stats is None:
        return IterationTiming(
            compute_time=compute,
            communication_time=communication_time(stats, network, scale),
        )

    if bucket_sizes is None:
        raise ValueError("bucket_stats needs the matching bucket_sizes")
    per_bucket = list(bucket_stats)
    sizes = [int(size) for size in bucket_sizes]
    if len(per_bucket) != len(sizes):
        raise ValueError(
            f"bucket_stats has {len(per_bucket)} buckets but bucket_sizes "
            f"has {len(sizes)}")
    backward = [t * slowdown for t in profile.bucket_backward_times_for(sizes)]
    comms = [communication_time(part, network, scale) for part in per_bucket]
    # Backward runs the layers in reverse: the last bucket's gradients are
    # ready first, so the pipeline consumes the lists back to front.
    timeline = overlap_timeline(backward[::-1], comms[::-1])
    non_overlap = max(0.0, compute - timeline.backward_total)
    total_comm = sum(comms)
    overlapped_total = non_overlap + timeline.critical_path
    return IterationTiming(
        compute_time=compute,
        communication_time=total_comm,
        hidden_comm_time=compute + total_comm - overlapped_total,
        timeline=timeline,
    )
