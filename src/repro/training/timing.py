"""Simulated per-iteration timing.

The paper reports wall-clock quantities (per-update time, training time to a
target accuracy) measured on its GPU clusters.  This repository replaces
wall-clock measurement with the same alpha-beta model the paper uses for its
analysis:

* **communication time** comes from the *measured* rounds and per-round
  busiest-receiver volumes of the simulated cluster, priced by a
  :class:`~repro.comm.network.NetworkProfile`;
* **computation time** is a per-case constant (the paper's compute bars in
  Fig. 8 are flat across communication methods, so a constant profile
  preserves every comparison);
* because the NumPy models are orders of magnitude smaller than the paper's
  (a scaled-down VGG-16 here has ~10^5 parameters, the real one 14.7M), the
  bandwidth term is scaled by ``paper_parameters / model_parameters``.  The
  communication algorithms' volumes are linear in the gradient size, so this
  rescaling reproduces the latency/bandwidth balance of the full-size model
  without simulating 10^7-element vectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

from ..comm.network import HeterogeneousNetwork, NetworkProfile
from ..comm.stats import CommStats

__all__ = ["ComputeProfile", "IterationTiming", "communication_time", "iteration_time"]


@dataclass(frozen=True)
class ComputeProfile:
    """Computation-side timing of one training case.

    Parameters
    ----------
    compute_time_per_update:
        Seconds of forward + backward + optimiser work per iteration
        (calibrated to the paper's Fig. 8 computation bars).
    paper_parameters:
        Parameter count of the model the paper trains for this case.
    """

    compute_time_per_update: float
    paper_parameters: float

    def __post_init__(self) -> None:
        if self.compute_time_per_update < 0:
            raise ValueError("compute_time_per_update must be non-negative")
        if self.paper_parameters <= 0:
            raise ValueError("paper_parameters must be positive")

    def volume_scale(self, model_parameters: int) -> float:
        """Factor by which measured communication volumes are scaled so the
        bandwidth term corresponds to the paper's model size."""
        if model_parameters <= 0:
            raise ValueError("model_parameters must be positive")
        return float(self.paper_parameters) / float(model_parameters)


@dataclass
class IterationTiming:
    """Simulated time of one training iteration."""

    compute_time: float
    communication_time: float

    @property
    def total(self) -> float:
        return self.compute_time + self.communication_time


def communication_time(stats: CommStats,
                       network: Union[NetworkProfile, HeterogeneousNetwork],
                       volume_scale: float = 1.0) -> float:
    """Bulk-synchronous communication time of a synchronisation.

    Under a uniform :class:`~repro.comm.network.NetworkProfile` each round
    costs ``alpha`` plus ``beta`` times the busiest receiver's volume.
    Under a :class:`~repro.comm.network.HeterogeneousNetwork` a round is
    priced as the **maximum over per-worker critical paths** — worker ``w``
    finishes after ``alpha_w + beta_w * received_w`` and the synchronous
    round waits for the slowest — using the per-round per-worker volumes
    the cluster records.  ``volume_scale`` rescales volumes to the paper's
    model size (see module docstring).
    """
    if volume_scale <= 0:
        raise ValueError("volume_scale must be positive")
    if isinstance(network, HeterogeneousNetwork):
        time = sum(network.round_time(received, volume_scale)
                   for received in stats.per_round_received)
        # Rounds merged from stats predating per-round rows (or recorded
        # under a different membership) price at the default latency.
        time += network.default.alpha * max(
            0, stats.rounds - len(stats.per_round_received))
        return time
    time = network.alpha * stats.rounds
    time += network.beta * volume_scale * sum(stats.per_round_max_received)
    return time


def iteration_time(stats: CommStats,
                   network: Union[NetworkProfile, HeterogeneousNetwork],
                   profile: ComputeProfile,
                   model_parameters: Optional[int] = None,
                   compute_factors: Optional[Sequence[float]] = None) -> IterationTiming:
    """Compute + communication time of one iteration.

    ``compute_factors`` are per-worker compute slowdown factors (e.g. from
    :meth:`~repro.comm.faults.FaultPlan.straggler_factors`): synchronous
    training waits for the slowest worker's forward/backward pass, so the
    compute term scales by their maximum.
    """
    scale = 1.0
    if model_parameters is not None:
        scale = profile.volume_scale(model_parameters)
    compute = profile.compute_time_per_update
    if compute_factors is not None:
        factors = [float(factor) for factor in compute_factors]
        if not factors:
            raise ValueError("compute_factors must not be empty")
        if any(factor < 0 for factor in factors):
            raise ValueError("compute factors must be non-negative")
        compute *= max(factors)
    return IterationTiming(
        compute_time=compute,
        communication_time=communication_time(stats, network, scale),
    )
