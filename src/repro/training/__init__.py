"""Distributed training engine: trainer, timing, metrics and the seven cases."""

from .cases import CASES, CaseSpec, case_names, get_case
from .metrics import EpochRecord, IterationRecord, TrainingHistory
from .timing import ComputeProfile, IterationTiming, communication_time, iteration_time
from .trainer import (
    DistributedTrainer,
    TrainerConfig,
    default_loss_for_task,
    default_metric_for_task,
)

__all__ = [
    "CASES",
    "CaseSpec",
    "case_names",
    "get_case",
    "EpochRecord",
    "IterationRecord",
    "TrainingHistory",
    "ComputeProfile",
    "IterationTiming",
    "communication_time",
    "iteration_time",
    "DistributedTrainer",
    "TrainerConfig",
    "default_loss_for_task",
    "default_metric_for_task",
]
