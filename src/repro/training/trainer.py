"""Data-parallel synchronous SGD over the simulated cluster.

:class:`DistributedTrainer` reproduces the training loop of Fig. 4: every
worker holds a model replica and a disjoint data shard; each iteration the
workers compute local gradients in parallel, synchronise them through a
:class:`~repro.core.base.GradientSynchronizer` (SparDL or any baseline), and
apply the identical averaged global gradient to their replicas.  Per-iteration
simulated time combines a per-case compute profile with the alpha-beta cost of
the measured communication (see :mod:`repro.training.timing`).

The synchroniser may be passed ready-built, or as a *factory*
``factory(cluster, model) -> GradientSynchronizer`` (e.g. from
:func:`repro.api.make_factory`): the trainer calls the factory with its
reference replica, so flat and bucketed synchronisers alike derive their
gradient layout from the model instead of the caller pre-computing
``num_parameters()``.  All synchronisation is driven through a
:class:`~repro.core.pipeline.SyncSession`, whose cumulative
:class:`~repro.comm.stats.CommStats` and resolved-``k`` history are exposed
as :attr:`DistributedTrainer.session`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from ..comm.cluster import SimulatedCluster
from ..comm.network import ETHERNET, NetworkProfile
from ..core.base import GradientSynchronizer
from ..core.pipeline import SyncSession
from ..data.datasets import DataLoader, Dataset, TaskType, shard_dataset
from ..nn.losses import CrossEntropyLoss, Loss, MSELoss, accuracy
from ..nn.module import Module
from ..nn.optim import SGD, ConstantLRSchedule, StepLRSchedule
from ..nn.parameter import flatten_gradients, flatten_values
from .metrics import EpochRecord, IterationRecord, TrainingHistory
from .timing import ComputeProfile, iteration_time

__all__ = ["TrainerConfig", "DistributedTrainer", "default_loss_for_task",
           "default_metric_for_task"]


def default_loss_for_task(task: TaskType) -> Loss:
    """The loss function the paper uses for each task type."""
    if task is TaskType.IMAGE_REGRESSION:
        return MSELoss()
    return CrossEntropyLoss()


def default_metric_for_task(task: TaskType) -> tuple[str, bool]:
    """``(metric_name, higher_is_better)`` for each task type."""
    if task.is_classification:
        return "accuracy", True
    return "loss", False


@dataclass
class TrainerConfig:
    """Hyper-parameters of one distributed training run."""

    batch_size: int = 32
    learning_rate: float = 0.1
    momentum: float = 0.0
    weight_decay: float = 0.0
    lr_step_epochs: Optional[int] = None
    lr_gamma: float = 0.1
    seed: int = 0
    #: Verify after every iteration that all replicas hold identical
    #: parameters (slow; used by the integration tests).
    check_consistency: bool = False

    def schedule(self):
        if self.lr_step_epochs is None:
            return ConstantLRSchedule(self.learning_rate)
        return StepLRSchedule(self.learning_rate, self.lr_step_epochs, self.lr_gamma)


#: A ready synchroniser, or ``factory(cluster, model)`` building one.
SynchronizerLike = Union[GradientSynchronizer,
                         Callable[[SimulatedCluster, Module], GradientSynchronizer]]


class DistributedTrainer:
    """Synchronous data-parallel trainer over a simulated cluster."""

    def __init__(
        self,
        cluster: SimulatedCluster,
        synchronizer: SynchronizerLike,
        model_factory: Callable[[int], Module],
        train_dataset: Dataset,
        eval_dataset: Dataset,
        *,
        loss: Optional[Loss] = None,
        config: Optional[TrainerConfig] = None,
        network: NetworkProfile = ETHERNET,
        compute_profile: Optional[ComputeProfile] = None,
        case_name: str = "",
    ) -> None:
        self.cluster = cluster
        self.config = config or TrainerConfig()
        self.network = network
        self.train_dataset = train_dataset
        self.eval_dataset = eval_dataset
        self.task = train_dataset.task
        self.loss = loss or default_loss_for_task(self.task)
        self.metric_name, self.higher_is_better = default_metric_for_task(self.task)
        self.case_name = case_name or train_dataset.name

        num_workers = cluster.num_workers
        # Identical replicas: the same seed is passed to every factory call.
        self.replicas: List[Module] = [model_factory(self.config.seed)
                                       for _ in range(num_workers)]
        self.num_elements = self.replicas[0].num_parameters()
        if not isinstance(synchronizer, GradientSynchronizer):
            # A factory builds the synchroniser *from* the model, so flat and
            # bucketed layouts alike can never disagree with the parameter
            # count (the historical failure mode of pre-built synchronisers).
            synchronizer = synchronizer(cluster, self.replicas[0])
        if self.num_elements != synchronizer.num_elements:
            raise ValueError(
                f"synchroniser was built for {synchronizer.num_elements} gradients but the "
                f"model has {self.num_elements} parameters"
            )
        self.synchronizer = synchronizer
        #: Staged-pipeline driver: cumulative CommStats and k history across
        #: the whole training run.
        self.session = SyncSession(synchronizer)
        reference = flatten_values(self.replicas[0].parameters())
        for replica in self.replicas[1:]:
            if not np.array_equal(flatten_values(replica.parameters()), reference):
                raise RuntimeError("model_factory must produce identical replicas for a fixed seed")

        self.compute_profile = compute_profile or ComputeProfile(
            compute_time_per_update=0.0, paper_parameters=self.num_elements
        )
        self._schedule = self.config.schedule()
        self.optimizers: List[SGD] = [
            SGD(replica.parameters(), learning_rate=self.config.learning_rate,
                momentum=self.config.momentum, weight_decay=self.config.weight_decay)
            for replica in self.replicas
        ]
        self.shards = [shard_dataset(train_dataset, num_workers, worker)
                       for worker in range(num_workers)]
        self.history = TrainingHistory(method=synchronizer.name, case=self.case_name)
        self._iteration = 0

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def train(self, num_epochs: int, eval_every: int = 1) -> TrainingHistory:
        """Run ``num_epochs`` of synchronous training."""
        if num_epochs <= 0:
            raise ValueError("num_epochs must be positive")
        for epoch in range(num_epochs):
            self.train_epoch(epoch, evaluate=((epoch + 1) % eval_every == 0
                                              or epoch == num_epochs - 1))
        return self.history

    def train_epoch(self, epoch: int, evaluate: bool = True) -> EpochRecord:
        """One pass over every worker's shard."""
        learning_rate = self._schedule.at_epoch(epoch)
        loaders = [
            DataLoader(shard, self.config.batch_size, shuffle=True,
                       seed=self.config.seed + 1000 * epoch + worker)
            for worker, shard in enumerate(self.shards)
        ]
        iterators = [iter(loader) for loader in loaders]
        steps = min(len(loader) for loader in loaders)

        epoch_losses: List[float] = []
        epoch_comm = 0.0
        epoch_compute = 0.0
        for _ in range(steps):
            record = self._train_step(epoch, iterators, learning_rate)
            epoch_losses.append(record.loss)
            epoch_comm += record.communication_time
            epoch_compute += record.compute_time

        train_loss = float(np.mean(epoch_losses)) if epoch_losses else 0.0
        epoch_time = epoch_comm + epoch_compute

        if evaluate:
            eval_loss, eval_metric = self.evaluate()
        else:
            eval_loss, eval_metric = float("nan"), float("nan")
        record = EpochRecord(
            epoch=epoch,
            train_loss=train_loss,
            eval_loss=eval_loss,
            eval_metric=eval_metric,
            metric_name=self.metric_name,
            epoch_time=epoch_time,
            cumulative_time=self.total_time,
            communication_time=epoch_comm,
            compute_time=epoch_compute,
        )
        self.history.add_epoch(record)
        return record

    def _train_step(self, epoch: int, iterators, learning_rate: float) -> IterationRecord:
        gradients: Dict[int, np.ndarray] = {}
        losses: List[float] = []
        for worker, replica in enumerate(self.replicas):
            inputs, targets = next(iterators[worker])
            replica.train()
            replica.zero_grad()
            outputs = replica.forward(inputs)
            loss_value, grad_output = self.loss(outputs, targets)
            replica.backward(grad_output)
            gradients[worker] = flatten_gradients(replica.parameters())
            losses.append(loss_value)

        result = self.session.step(gradients)
        timing = iteration_time(result.stats, self.network, self.compute_profile,
                                model_parameters=self.num_elements)

        for worker, optimizer in enumerate(self.optimizers):
            averaged = result.gradient(worker) / self.cluster.num_workers
            optimizer.step(flat_gradient=averaged, learning_rate=learning_rate)

        if self.config.check_consistency:
            reference = flatten_values(self.replicas[0].parameters())
            for replica in self.replicas[1:]:
                if not np.allclose(flatten_values(replica.parameters()), reference,
                                   rtol=1e-9, atol=1e-12):
                    raise RuntimeError("model replicas diverged after a synchronised update")

        record = IterationRecord(
            iteration=self._iteration,
            epoch=epoch,
            loss=float(np.mean(losses)),
            compute_time=timing.compute_time,
            communication_time=timing.communication_time,
        )
        self.history.add_iteration(record)
        self._iteration += 1
        return record

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(self, dataset: Optional[Dataset] = None, batch_size: int = 64
                 ) -> tuple[float, float]:
        """``(loss, metric)`` of replica 0 on ``dataset`` (default: eval set)."""
        dataset = dataset or self.eval_dataset
        model = self.replicas[0]
        model.eval()
        losses: List[float] = []
        metrics: List[float] = []
        weights: List[int] = []
        for start in range(0, len(dataset), batch_size):
            inputs, targets = dataset.batch(start, start + batch_size)
            outputs = model.forward(inputs)
            loss_value, _ = self.loss(outputs, targets)
            losses.append(loss_value)
            weights.append(inputs.shape[0])
            if self.metric_name == "accuracy":
                metrics.append(accuracy(outputs, targets))
        model.train()
        total = float(np.average(losses, weights=weights))
        if self.metric_name == "accuracy":
            metric = float(np.average(metrics, weights=weights))
        else:
            metric = total
        return total, metric

    # ------------------------------------------------------------------
    @property
    def total_time(self) -> float:
        """Cumulative simulated training time so far."""
        return sum(record.total_time for record in self.history.iterations)

    @property
    def global_model(self) -> Module:
        """Replica 0 (all replicas are identical after every update)."""
        return self.replicas[0]
