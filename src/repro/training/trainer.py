"""Data-parallel synchronous SGD over the simulated cluster.

:class:`DistributedTrainer` reproduces the training loop of Fig. 4: every
worker holds a model replica and a disjoint data shard; each iteration the
workers compute local gradients in parallel, synchronise them through a
:class:`~repro.core.base.GradientSynchronizer` (SparDL or any baseline), and
apply the identical averaged global gradient to their replicas.  Per-iteration
simulated time combines a per-case compute profile with the alpha-beta cost of
the measured communication (see :mod:`repro.training.timing`).

The synchroniser may be passed ready-built, or as a *factory*
``factory(cluster, model) -> GradientSynchronizer`` (e.g. from
:func:`repro.api.make_factory`): the trainer calls the factory with its
reference replica, so flat and bucketed synchronisers alike derive their
gradient layout from the model instead of the caller pre-computing
``num_parameters()``.  All synchronisation is driven through a
:class:`~repro.core.pipeline.SyncSession`, whose cumulative
:class:`~repro.comm.stats.CommStats` and resolved-``k`` history are exposed
as :attr:`DistributedTrainer.session`.

Compute modes
-------------
Where the per-worker forward/backward runs is a property of the transport,
not of the algorithm.  In ``inline`` mode (the historical behaviour, and
the default on the simulated backend) the trainer iterates the replicas in
the calling process.  In ``offload`` mode (the default on transports whose
workers run in parallel, e.g. the process-backed
:class:`~repro.comm.mp_backend.MultiprocessCluster`) each replica, its
optimizer and its data shard live on the transport's worker for that rank
— shipped once via :meth:`~repro.comm.transport.Transport.run_workers` —
and every iteration computes gradients and applies updates worker-side,
concurrently.  Only the synchronisation itself runs in the parent, through
the exact same staged pipeline, so the two modes produce bit-identical
models: the per-worker batches are a pure function of ``(seed, epoch,
worker)`` and the arithmetic is the same either way.
"""

from __future__ import annotations

import copy
import inspect
import time
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Union

import numpy as np

from ..comm.network import ETHERNET, NetworkProfile
from ..comm.transport import Transport, UnsupportedTransportFeature
from ..core.base import GradientSynchronizer
from ..core.pipeline import SyncSession
from ..obs import Tracer, TraceLevel, attach_tracer, replay_iteration_timing
from ..data.datasets import DataLoader, Dataset, TaskType, shard_dataset
from ..nn.losses import CrossEntropyLoss, Loss, MSELoss, accuracy
from ..nn.module import Module
from ..nn.optim import SGD, ConstantLRSchedule, StepLRSchedule
from ..nn.parameter import flatten_gradients, flatten_values
from .metrics import EpochRecord, IterationRecord, TrainingHistory
from .timing import ComputeProfile, iteration_time

__all__ = ["TrainerConfig", "DistributedTrainer", "default_loss_for_task",
           "default_metric_for_task"]


def default_loss_for_task(task: TaskType) -> Loss:
    """The loss function the paper uses for each task type."""
    if task is TaskType.IMAGE_REGRESSION:
        return MSELoss()
    return CrossEntropyLoss()


def default_metric_for_task(task: TaskType) -> tuple[str, bool]:
    """``(metric_name, higher_is_better)`` for each task type."""
    if task.is_classification:
        return "accuracy", True
    return "loss", False


@dataclass
class TrainerConfig:
    """Hyper-parameters of one distributed training run."""

    batch_size: int = 32
    learning_rate: float = 0.1
    momentum: float = 0.0
    #: Apply :attr:`momentum` as DGC momentum *correction* inside the
    #: synchroniser instead of locally in each optimizer.  The trainer calls
    #: ``synchronizer.enable_momentum_correction(momentum)`` and constructs
    #: the per-replica SGD optimizers with ``momentum=0.0``, so the velocity
    #: recursion runs exactly once — on the gradients *before* sparsification
    #: (Lin et al., ICLR'18) — rather than once per side.  Requires a
    #: synchroniser with an error-feedback residual path.
    momentum_correction: bool = False
    weight_decay: float = 0.0
    lr_step_epochs: Optional[int] = None
    lr_gamma: float = 0.1
    seed: int = 0
    #: Verify after every iteration that all replicas hold identical
    #: parameters (slow; used by the integration tests).
    check_consistency: bool = False
    #: Where the per-worker forward/backward runs: ``"inline"`` (calling
    #: process, the deterministic reference), ``"offload"`` (on the
    #: transport's workers via ``run_workers``) or ``"auto"`` (offload
    #: exactly when the transport's workers run in parallel, so the
    #: simulated backend keeps its historical inline path).
    compute_mode: str = "auto"
    #: Emulated accelerator time per training sample, in seconds.  Each
    #: worker blocks for ``device_seconds_per_sample * batch`` of real time
    #: after its backward pass, modelling the paper's GPU compute phase.
    #: On a process-backed transport these phases genuinely overlap, which
    #: is what the backend benchmark measures; 0 (the default) disables the
    #: emulation.
    device_seconds_per_sample: float = 0.0
    #: Use the overlap-aware iteration timing when the synchroniser reports
    #: per-bucket statistics (bucketed layouts): each bucket's exchange is
    #: scheduled against the per-bucket backward slices, and the hidden
    #: communication is subtracted from the iteration time.  ``False``
    #: restores the sequential ``compute + comm`` sum bit for bit.
    overlap_comm: bool = True
    #: Trace level of the run: ``"off"`` (default; no tracer is constructed
    #: and every code path is the exact untraced one), ``"steps"``
    #: (epoch/iteration/stage spans, membership markers, the replayed
    #: overlap timeline) or ``"comm"`` (everything plus per-message and
    #: per-fault events).  See ``docs/observability.md``; the run's tracer
    #: is exposed as :attr:`DistributedTrainer.tracer`.
    trace: str = "off"

    def schedule(self):
        if self.lr_step_epochs is None:
            return ConstantLRSchedule(self.learning_rate)
        return StepLRSchedule(self.learning_rate, self.lr_step_epochs, self.lr_gamma)


#: A ready synchroniser, or ``factory(cluster, model)`` building one.
SynchronizerLike = Union[GradientSynchronizer,
                         Callable[[Transport, Module], GradientSynchronizer]]


def _accepted_kwargs(factory: Callable, candidates: Dict[str, Any]) -> Dict[str, Any]:
    """The subset of ``candidates`` that ``factory``'s signature accepts
    (by name or through ``**kwargs``); empty when the signature cannot be
    inspected.  Lets the trainer pass optional context to factories that
    take it without breaking plain ``lambda cluster, model`` factories."""
    try:
        parameters = inspect.signature(factory).parameters.values()
    except (TypeError, ValueError):
        return {}
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters):
        return dict(candidates)
    names = {p.name for p in parameters
             if p.kind in (inspect.Parameter.POSITIONAL_OR_KEYWORD,
                           inspect.Parameter.KEYWORD_ONLY)}
    return {key: value for key, value in candidates.items() if key in names}


# ---------------------------------------------------------------------------
# offload-mode worker tasks
# ---------------------------------------------------------------------------
# Module-level functions so process-backed transports can pickle them; each
# runs as ``fn(context, rank, *args)`` under Transport.run_workers against
# the persistent per-rank context.

def _worker_install(context: Dict[str, Any], rank: int,
                    state: Dict[str, Any]) -> int:
    """Adopt this rank's training state (replica, optimizer, loss, shard).

    One deepcopy makes the in-process reference backend behave exactly like
    a process boundary: the worker's replica and optimizer never alias the
    parent's objects (on a real process backend the pickle round-trip
    already guarantees that, and the copy of a just-unpickled state is
    cheap).  The optimizer's parameter references survive either copy
    because replica and optimizer travel in one object graph.
    """
    context["trainer"] = copy.deepcopy(state)
    return int(context["trainer"]["replica"].num_parameters())


def _worker_epoch_start(context: Dict[str, Any], rank: int, batch_size: int,
                        seed: int) -> int:
    """Open this epoch's shard iterator; returns the number of batches."""
    state = context["trainer"]
    loader = DataLoader(state["shard"], batch_size, shuffle=True, seed=seed)
    state["iterator"] = iter(loader)
    return len(loader)


def _worker_compute_gradient(context: Dict[str, Any], rank: int,
                             device_seconds_per_sample: float):
    """One local step: next batch, forward, backward; returns
    ``(flat_gradient, loss)``."""
    state = context["trainer"]
    replica = state["replica"]
    inputs, targets = next(state["iterator"])
    replica.train()
    replica.zero_grad()
    outputs = replica.forward(inputs)
    loss_value, grad_output = state["loss"](outputs, targets)
    replica.backward(grad_output)
    if device_seconds_per_sample > 0.0:
        time.sleep(device_seconds_per_sample * inputs.shape[0])
    return flatten_gradients(replica.parameters()), float(loss_value)


def _worker_apply_update(context: Dict[str, Any], rank: int,
                         averaged: np.ndarray, learning_rate: float) -> None:
    """Apply the synchronised averaged gradient to this rank's replica."""
    state = context["trainer"]
    state["optimizer"].step(flat_gradient=np.asarray(averaged, dtype=np.float64),
                            learning_rate=learning_rate)


def _worker_fetch_params(context: Dict[str, Any], rank: int) -> np.ndarray:
    """This rank's flattened parameter vector (consistency checks)."""
    return flatten_values(context["trainer"]["replica"].parameters())


def _worker_fetch_replica(context: Dict[str, Any], rank: int) -> Module:
    """A detached copy of this rank's live replica (evaluation)."""
    return copy.deepcopy(context["trainer"]["replica"])


class DistributedTrainer:
    """Synchronous data-parallel trainer over any transport backend."""

    def __init__(
        self,
        cluster: Transport,
        synchronizer: SynchronizerLike,
        model_factory: Callable[[int], Module],
        train_dataset: Dataset,
        eval_dataset: Dataset,
        *,
        loss: Optional[Loss] = None,
        config: Optional[TrainerConfig] = None,
        network: NetworkProfile = ETHERNET,
        compute_profile: Optional[ComputeProfile] = None,
        case_name: str = "",
    ) -> None:
        self.cluster = cluster
        self.config = config or TrainerConfig()
        self.network = network
        self.train_dataset = train_dataset
        self.eval_dataset = eval_dataset
        self.task = train_dataset.task
        self.loss = loss or default_loss_for_task(self.task)
        self.metric_name, self.higher_is_better = default_metric_for_task(self.task)
        self.case_name = case_name or train_dataset.name

        num_workers = cluster.num_workers
        # Identical replicas: the same seed is passed to every factory call.
        self.replicas: List[Module] = [model_factory(self.config.seed)
                                       for _ in range(num_workers)]
        self.num_elements = self.replicas[0].num_parameters()
        self.compute_profile = compute_profile or ComputeProfile(
            compute_time_per_update=0.0, paper_parameters=self.num_elements
        )
        if not isinstance(synchronizer, GradientSynchronizer):
            # A factory builds the synchroniser *from* the model, so flat and
            # bucketed layouts alike can never disagree with the parameter
            # count (the historical failure mode of pre-built synchronisers).
            # Factories that take them (e.g. api.make_factory) also receive
            # the trainer's network and compute profile, so buckets=auto
            # plans its fusion against the setting the run is timed with.
            context = {"network": self.network,
                       "compute_profile": self.compute_profile}
            synchronizer = synchronizer(cluster, self.replicas[0],
                                        **_accepted_kwargs(synchronizer, context))
        if self.num_elements != synchronizer.num_elements:
            raise ValueError(
                f"synchroniser was built for {synchronizer.num_elements} gradients but the "
                f"model has {self.num_elements} parameters"
            )
        self.synchronizer = synchronizer
        # DGC momentum-correction handoff: the synchroniser runs the velocity
        # recursion on pre-sparsification gradients, so the optimizers must
        # not apply momentum a second time.
        if self.config.momentum_correction:
            if not self.config.momentum > 0.0:
                raise ValueError(
                    "momentum_correction=True requires momentum > 0 "
                    f"(got {self.config.momentum})")
            synchronizer.enable_momentum_correction(self.config.momentum)
        # Tracing: adopt a tracer the synchroniser already carries (from a
        # ``trace=`` facade spec) or build one from the config level; either
        # way it is installed across the synchroniser, its inner bucketed
        # sessions and the transport.  With trace=off and no spec tracer,
        # ``self.tracer`` stays None and nothing below ever touches it.
        level = TraceLevel.coerce(self.config.trace)
        tracer = getattr(synchronizer, "tracer", None)
        if tracer is None and level is not TraceLevel.OFF:
            tracer = Tracer(level)
        if tracer is not None:
            attach_tracer(synchronizer, tracer)
        #: The run's :class:`~repro.obs.trace.Tracer` (``None`` when off).
        self.tracer = tracer
        #: Staged-pipeline driver: cumulative CommStats and k history across
        #: the whole training run.
        self.session = SyncSession(synchronizer)
        reference = flatten_values(self.replicas[0].parameters())
        for replica in self.replicas[1:]:
            if not np.array_equal(flatten_values(replica.parameters()), reference):
                raise RuntimeError("model_factory must produce identical replicas for a fixed seed")

        self._schedule = self.config.schedule()
        optimizer_momentum = (0.0 if self.config.momentum_correction
                              else self.config.momentum)
        self.optimizers: List[SGD] = [
            SGD(replica.parameters(), learning_rate=self.config.learning_rate,
                momentum=optimizer_momentum, weight_decay=self.config.weight_decay)
            for replica in self.replicas
        ]
        self.shards = [shard_dataset(train_dataset, num_workers, worker)
                       for worker in range(num_workers)]
        self.history = TrainingHistory(method=synchronizer.name, case=self.case_name)
        self._iteration = 0

        mode = self.config.compute_mode
        if mode not in ("auto", "inline", "offload"):
            raise ValueError(
                f"unknown compute_mode {mode!r}; expected auto, inline or offload")
        if mode == "auto":
            mode = "offload" if cluster.capabilities.parallel_workers else "inline"
        if mode == "offload" and not cluster.capabilities.worker_compute:
            raise UnsupportedTransportFeature(
                f"{type(cluster).__name__} cannot run worker compute; "
                "use compute_mode='inline'")
        #: Resolved compute mode ("inline" or "offload").
        self.compute_mode = mode
        if mode == "offload":
            self._install_worker_state()

    def _install_worker_state(self) -> None:
        """Ship every rank's replica, optimizer, loss and shard to its
        worker.  After this the parent-side ``replicas`` are construction
        artefacts only — the live models advance on the workers, and
        :meth:`evaluate` / :attr:`global_model` fetch from there."""
        shipped = self.cluster.run_workers(_worker_install, {
            worker: ({
                "replica": self.replicas[worker],
                "optimizer": self.optimizers[worker],
                "loss": self.loss,
                "shard": self.shards[worker],
            },)
            for worker in range(self.cluster.num_workers)
        })
        for worker, reported in shipped.items():
            if reported != self.num_elements:
                raise RuntimeError(
                    f"worker {worker} installed a replica with {reported} "
                    f"parameters, expected {self.num_elements}")

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def _span(self, name: str, cat: str, **args: Any):
        """A tracer span around a trainer phase, or a no-op context when
        tracing is off (the untraced path never touches the tracer)."""
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            return tracer.span(name, cat, args=args)
        return nullcontext()

    def train(self, num_epochs: int, eval_every: int = 1) -> TrainingHistory:
        """Run ``num_epochs`` of synchronous training."""
        if num_epochs <= 0:
            raise ValueError("num_epochs must be positive")
        for epoch in range(num_epochs):
            self.train_epoch(epoch, evaluate=((epoch + 1) % eval_every == 0
                                              or epoch == num_epochs - 1))
        return self.history

    def train_epoch(self, epoch: int, evaluate: bool = True) -> EpochRecord:
        """One pass over every worker's shard."""
        with self._span(f"epoch {epoch}", "iteration", epoch=epoch):
            return self._train_epoch_impl(epoch, evaluate)

    def _train_epoch_impl(self, epoch: int, evaluate: bool) -> EpochRecord:
        learning_rate = self._schedule.at_epoch(epoch)
        # The per-worker batch stream is a pure function of (seed, epoch,
        # worker) — constructed parent-side or worker-side, same batches.
        if self.compute_mode == "offload":
            lengths = self.cluster.run_workers(_worker_epoch_start, {
                worker: (self.config.batch_size,
                         self.config.seed + 1000 * epoch + worker)
                for worker in range(self.cluster.num_workers)
            })
            iterators = None
            steps = min(lengths.values())
        else:
            loaders = [
                DataLoader(shard, self.config.batch_size, shuffle=True,
                           seed=self.config.seed + 1000 * epoch + worker)
                for worker, shard in enumerate(self.shards)
            ]
            iterators = [iter(loader) for loader in loaders]
            steps = min(len(loader) for loader in loaders)

        epoch_losses: List[float] = []
        epoch_comm = 0.0
        epoch_compute = 0.0
        epoch_hidden = 0.0
        for _ in range(steps):
            record = self._train_step(epoch, iterators, learning_rate)
            epoch_losses.append(record.loss)
            epoch_comm += record.communication_time
            epoch_compute += record.compute_time
            epoch_hidden += record.hidden_comm_time

        train_loss = float(np.mean(epoch_losses)) if epoch_losses else 0.0
        epoch_time = epoch_comm + epoch_compute - epoch_hidden

        if evaluate:
            eval_loss, eval_metric = self.evaluate()
        else:
            eval_loss, eval_metric = float("nan"), float("nan")
        record = EpochRecord(
            epoch=epoch,
            train_loss=train_loss,
            eval_loss=eval_loss,
            eval_metric=eval_metric,
            metric_name=self.metric_name,
            epoch_time=epoch_time,
            cumulative_time=self.total_time,
            communication_time=epoch_comm,
            compute_time=epoch_compute,
            hidden_comm_time=epoch_hidden,
        )
        self.history.add_epoch(record)
        return record

    def _train_step(self, epoch: int, iterators, learning_rate: float) -> IterationRecord:
        with self._span("iteration", "iteration", iteration=self._iteration,
                        epoch=epoch):
            return self._train_step_impl(epoch, iterators, learning_rate)

    def _train_step_impl(self, epoch: int, iterators,
                         learning_rate: float) -> IterationRecord:
        gradients: Dict[int, np.ndarray] = {}
        losses: List[float] = []
        with self._span("compute", "compute", iteration=self._iteration):
            if self.compute_mode == "offload":
                computed = self.cluster.run_workers(_worker_compute_gradient, {
                    worker: (self.config.device_seconds_per_sample,)
                    for worker in range(self.cluster.num_workers)
                })
                for worker in sorted(computed):
                    gradients[worker], loss_value = computed[worker]
                    losses.append(loss_value)
            else:
                device = self.config.device_seconds_per_sample
                for worker, replica in enumerate(self.replicas):
                    inputs, targets = next(iterators[worker])
                    replica.train()
                    replica.zero_grad()
                    outputs = replica.forward(inputs)
                    loss_value, grad_output = self.loss(outputs, targets)
                    replica.backward(grad_output)
                    if device > 0.0:
                        time.sleep(device * inputs.shape[0])
                    gradients[worker] = flatten_gradients(replica.parameters())
                    losses.append(loss_value)

        result = self.session.step(gradients)
        bucket_stats = bucket_sizes = None
        if self.config.overlap_comm:
            # Bucketed synchronisers report per-bucket statistics; schedule
            # them against the backward slices so communication overlaps.
            bucket_stats = result.info.get("bucket_stats")
            if bucket_stats is not None:
                bucket_sizes = result.info.get("bucket_sizes")
        timing = iteration_time(result.stats, self.network, self.compute_profile,
                                model_parameters=self.num_elements,
                                bucket_stats=bucket_stats,
                                bucket_sizes=bucket_sizes)
        if self.tracer is not None and self.tracer.enabled:
            # Mirror the simulated clock onto its own trace track, so the
            # modelled backward/hidden/exposed-comm decomposition renders
            # next to the measured wall-clock spans.
            replay_iteration_timing(self.tracer, timing, self._iteration)

        num_workers = self.cluster.num_workers
        with self._span("apply_update", "compute", iteration=self._iteration):
            if self.compute_mode == "offload":
                self.cluster.run_workers(_worker_apply_update, {
                    worker: (result.gradient(worker) / num_workers, learning_rate)
                    for worker in range(num_workers)
                })
            else:
                for worker, optimizer in enumerate(self.optimizers):
                    averaged = result.gradient(worker) / num_workers
                    optimizer.step(flat_gradient=averaged,
                                   learning_rate=learning_rate)

        if self.config.check_consistency:
            if self.compute_mode == "offload":
                params = self.cluster.run_workers(_worker_fetch_params)
                reference = params[0]
                others = [params[w] for w in sorted(params) if w != 0]
            else:
                reference = flatten_values(self.replicas[0].parameters())
                others = [flatten_values(replica.parameters())
                          for replica in self.replicas[1:]]
            for values in others:
                if not np.allclose(values, reference, rtol=1e-9, atol=1e-12):
                    raise RuntimeError("model replicas diverged after a synchronised update")

        record = IterationRecord(
            iteration=self._iteration,
            epoch=epoch,
            loss=float(np.mean(losses)),
            compute_time=timing.compute_time,
            communication_time=timing.communication_time,
            hidden_comm_time=timing.hidden_comm_time,
        )
        self.history.add_iteration(record)
        self._iteration += 1
        return record

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(self, dataset: Optional[Dataset] = None, batch_size: int = 64
                 ) -> tuple[float, float]:
        """``(loss, metric)`` of replica 0 on ``dataset`` (default: eval set)."""
        dataset = dataset or self.eval_dataset
        model = self.global_model
        model.eval()
        losses: List[float] = []
        metrics: List[float] = []
        weights: List[int] = []
        for start in range(0, len(dataset), batch_size):
            inputs, targets = dataset.batch(start, start + batch_size)
            outputs = model.forward(inputs)
            loss_value, _ = self.loss(outputs, targets)
            losses.append(loss_value)
            weights.append(inputs.shape[0])
            if self.metric_name == "accuracy":
                metrics.append(accuracy(outputs, targets))
        model.train()
        total = float(np.average(losses, weights=weights))
        if self.metric_name == "accuracy":
            metric = float(np.average(metrics, weights=weights))
        else:
            metric = total
        return total, metric

    # ------------------------------------------------------------------
    @property
    def total_time(self) -> float:
        """Cumulative simulated training time so far."""
        return sum(record.total_time for record in self.history.iterations)

    @property
    def global_model(self) -> Module:
        """The live replica of rank 0 (all replicas are identical after
        every update).  In offload mode the live models advance on the
        transport's workers, so rank 0's replica is fetched from there —
        including any stateful layer buffers the parent never sees."""
        if self.compute_mode == "offload":
            return self.cluster.run_workers(_worker_fetch_replica, {0: ()})[0]
        return self.replicas[0]
