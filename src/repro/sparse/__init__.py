"""Sparse gradient substrate: COO vectors, top-k selection and block layout.

Invariant contract
------------------
Every :class:`SparseGradient` holds sorted, unique, in-range ``int64``
indices with matching ``float64`` values.  There are two construction paths:

* **Validating** (API boundary): ``SparseGradient(...)`` /
  :meth:`SparseGradient.from_dense` check — and if necessary repair — the
  invariant.  Use these for any arrays whose provenance is not this package.
* **Trusted** (kernel-internal): :meth:`SparseGradient.from_sorted_unique`
  skips re-validation entirely.  It is reserved for arrays produced by the
  kernels in this package (linear merge-add, k-way gather merge, top-k /
  threshold splits, searchsorted restriction), all of which preserve the
  invariant by construction.  Passing unsorted, duplicated or out-of-range
  indices to it is undefined behaviour.

The raw array kernels (:func:`merge_add_coo`, :func:`merge_many_coo`) are
exported for the perf-regression harness under ``benchmarks/perf/``.
"""

from .blocks import BlockLayout, block_bounds
from .topk import kth_largest_magnitude, threshold_indices, top_k_indices, top_k_mask
from .vector import (
    SparseGradient,
    compiled_kernels_available,
    merge_add_coo,
    merge_many_coo,
)

__all__ = [
    "SparseGradient",
    "compiled_kernels_available",
    "BlockLayout",
    "block_bounds",
    "top_k_indices",
    "top_k_mask",
    "threshold_indices",
    "kth_largest_magnitude",
    "merge_add_coo",
    "merge_many_coo",
]
