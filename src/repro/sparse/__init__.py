"""Sparse gradient substrate: COO vectors, top-k selection and block layout."""

from .blocks import BlockLayout, block_bounds
from .topk import kth_largest_magnitude, threshold_indices, top_k_indices, top_k_mask
from .vector import SparseGradient

__all__ = [
    "SparseGradient",
    "BlockLayout",
    "block_bounds",
    "top_k_indices",
    "top_k_mask",
    "threshold_indices",
    "kth_largest_magnitude",
]
