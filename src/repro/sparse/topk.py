"""Top-k and threshold selection primitives.

Top-k sparsification keeps the ``k`` entries of a gradient vector with the
largest absolute value.  The paper additionally contrasts exact top-k
selection (used by SparDL, TopkA, TopkDSA, gTopk) with *threshold pruning*
(used by Ok-Topk), which selects every entry whose magnitude exceeds an
estimated threshold and therefore may return more or fewer than ``k``
entries.

All selections are deterministic: ties are broken towards the lower index so
repeated runs (and different workers holding identical data) agree exactly.
"""

from __future__ import annotations


import numpy as np

__all__ = [
    "top_k_indices",
    "top_k_mask",
    "threshold_indices",
    "kth_largest_magnitude",
]


def top_k_indices(values: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest-magnitude entries of ``values``.

    Returns a sorted index array.  ``k`` larger than the vector length
    returns all indices; ``k <= 0`` returns an empty array.  Ties are broken
    deterministically towards lower indices.

    Selection is O(n): ``np.partition`` finds the k-th largest magnitude (the
    cut), every entry strictly above the cut is selected, and the remaining
    slots are filled by the lowest-indexed entries exactly at the cut — which
    is bit-for-bit the selection a stable descending argsort would make.
    """
    values = np.asarray(values)
    n = values.shape[0]
    if k <= 0 or n == 0:
        return np.empty(0, dtype=np.int64)
    if k >= n:
        return np.arange(n, dtype=np.int64)
    magnitude = np.abs(values)
    if np.isnan(magnitude).any():
        # A stable argsort ranks NaN below every magnitude; np.partition
        # ranks it above.  Map NaN to -inf (unreachable by |x|) so the
        # partition cut and the tie pass reproduce the argsort selection.
        magnitude = np.where(np.isnan(magnitude), -np.inf, magnitude)
    cut = np.partition(magnitude, n - k)[n - k]
    strict = np.flatnonzero(magnitude > cut)
    need = k - strict.shape[0]
    ties = np.flatnonzero(magnitude == cut)[:need]
    selected = np.sort(np.concatenate([strict, ties]))
    return selected.astype(np.int64, copy=False)


def top_k_mask(values: np.ndarray, k: int) -> np.ndarray:
    """Boolean mask marking the top-k entries of ``values``."""
    mask = np.zeros(np.asarray(values).shape[0], dtype=bool)
    mask[top_k_indices(values, k)] = True
    return mask


def kth_largest_magnitude(values: np.ndarray, k: int) -> float:
    """Magnitude of the k-th largest-magnitude entry (the exact top-k
    threshold).  Returns 0.0 when ``k <= 0`` or the vector is empty — a
    threshold of 0.0 keeps everything, the only sensible answer when there
    is no k-th entry to cut at.  When ``0 < n <= k`` the smallest magnitude
    is returned (the threshold that keeps all ``n`` entries)."""
    values = np.asarray(values)
    n = values.shape[0]
    if n == 0 or k <= 0:
        return 0.0
    if k >= n:
        return float(np.min(np.abs(values)))
    magnitude = np.abs(values)
    return float(np.partition(magnitude, n - k)[n - k])


def threshold_indices(values: np.ndarray, threshold: float) -> np.ndarray:
    """Indices whose magnitude is at least ``threshold`` (threshold pruning,
    as used by Ok-Topk).  Entries exactly equal to the threshold are kept."""
    values = np.asarray(values)
    if threshold <= 0:
        return np.arange(values.shape[0], dtype=np.int64)
    return np.flatnonzero(np.abs(values) >= threshold).astype(np.int64)
