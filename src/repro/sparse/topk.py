"""Top-k and threshold selection primitives.

Top-k sparsification keeps the ``k`` entries of a gradient vector with the
largest absolute value.  The paper additionally contrasts exact top-k
selection (used by SparDL, TopkA, TopkDSA, gTopk) with *threshold pruning*
(used by Ok-Topk), which selects every entry whose magnitude exceeds an
estimated threshold and therefore may return more or fewer than ``k``
entries.

All selections are deterministic: ties are broken towards the lower index so
repeated runs (and different workers holding identical data) agree exactly.
"""

from __future__ import annotations


import numpy as np

__all__ = [
    "top_k_indices",
    "top_k_mask",
    "threshold_indices",
    "kth_largest_magnitude",
]


def top_k_indices(values: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest-magnitude entries of ``values``.

    Returns a sorted index array.  ``k`` larger than the vector length
    returns all indices; ``k <= 0`` returns an empty array.  Ties are broken
    deterministically towards lower indices.
    """
    values = np.asarray(values)
    n = values.shape[0]
    if k <= 0 or n == 0:
        return np.empty(0, dtype=np.int64)
    if k >= n:
        return np.arange(n, dtype=np.int64)
    magnitude = np.abs(values)
    # argsort on (-magnitude, index) gives deterministic tie-breaking; kind
    # "stable" preserves index order among equal magnitudes.
    order = np.argsort(-magnitude, kind="stable")
    selected = order[:k]
    return np.sort(selected.astype(np.int64))


def top_k_mask(values: np.ndarray, k: int) -> np.ndarray:
    """Boolean mask marking the top-k entries of ``values``."""
    mask = np.zeros(np.asarray(values).shape[0], dtype=bool)
    mask[top_k_indices(values, k)] = True
    return mask


def kth_largest_magnitude(values: np.ndarray, k: int) -> float:
    """Magnitude of the k-th largest-magnitude entry (the exact top-k
    threshold).  Returns 0.0 when ``k`` exceeds the number of entries."""
    values = np.asarray(values)
    n = values.shape[0]
    if n == 0 or k <= 0:
        return float("inf") if n == 0 and k > 0 else 0.0
    if k >= n:
        return float(np.min(np.abs(values))) if n else 0.0
    magnitude = np.abs(values)
    return float(np.partition(magnitude, n - k)[n - k])


def threshold_indices(values: np.ndarray, threshold: float) -> np.ndarray:
    """Indices whose magnitude is at least ``threshold`` (threshold pruning,
    as used by Ok-Topk).  Entries exactly equal to the threshold are kept."""
    values = np.asarray(values)
    if threshold <= 0:
        return np.arange(values.shape[0], dtype=np.int64)
    return np.flatnonzero(np.abs(values) >= threshold).astype(np.int64)
