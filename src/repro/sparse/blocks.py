"""Partitioning a gradient vector into contiguous blocks.

Spar-Reduce-Scatter partitions the ``n`` dense gradients of each worker into
``P`` (or ``P/d``) contiguous blocks; every block is sparsified and reduced
independently.  This module owns the block geometry so every algorithm
agrees on where block ``b`` starts and ends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from .vector import SparseGradient

__all__ = ["BlockLayout", "block_bounds"]


def block_bounds(length: int, num_blocks: int) -> List[Tuple[int, int]]:
    """Split ``[0, length)`` into ``num_blocks`` contiguous, nearly equal
    half-open ranges.  Earlier blocks receive the remainder, matching the
    usual MPI partitioning convention."""
    if num_blocks <= 0:
        raise ValueError("num_blocks must be positive")
    if length < 0:
        raise ValueError("length must be non-negative")
    base = length // num_blocks
    remainder = length % num_blocks
    bounds = []
    start = 0
    for i in range(num_blocks):
        size = base + (1 if i < remainder else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


@dataclass(frozen=True)
class BlockLayout:
    """Geometry of a gradient vector split into contiguous blocks."""

    length: int
    num_blocks: int

    def __post_init__(self) -> None:
        if self.num_blocks <= 0:
            raise ValueError("num_blocks must be positive")
        if self.length < 0:
            raise ValueError("length must be non-negative")
        object.__setattr__(self, "_bounds", tuple(block_bounds(self.length, self.num_blocks)))

    @property
    def bounds(self) -> Tuple[Tuple[int, int], ...]:
        return self._bounds  # type: ignore[attr-defined]

    def bound(self, block: int) -> Tuple[int, int]:
        return self.bounds[block]

    def block_of(self, index: int) -> int:
        """Block that owns coordinate ``index``."""
        if not 0 <= index < self.length:
            raise ValueError("index out of range")
        for block, (lo, hi) in enumerate(self.bounds):
            if lo <= index < hi:
                return block
        raise RuntimeError("unreachable")  # pragma: no cover

    def block_size(self, block: int) -> int:
        lo, hi = self.bound(block)
        return hi - lo

    def slice_dense(self, dense: np.ndarray, block: int) -> np.ndarray:
        lo, hi = self.bound(block)
        return dense[lo:hi]

    def sparse_block_from_dense(self, dense: np.ndarray, block: int,
                                k: int) -> Tuple[SparseGradient, np.ndarray, int]:
        """Top-k selection within ``block`` of a dense vector.

        Returns ``(selected, residual_block, lo)`` where ``selected`` is in
        global coordinates, ``residual_block`` is the dense block with the
        selected entries removed and ``lo`` is the block's start offset.
        """
        lo, hi = self.bound(block)
        selected, residual = SparseGradient.top_k_of_dense(
            dense[lo:hi], k, offset=lo, length=self.length
        )
        return selected, residual, lo

    def restrict(self, sparse: SparseGradient, block: int) -> SparseGradient:
        lo, hi = self.bound(block)
        return sparse.restrict(lo, hi)

    def iter_blocks(self) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(block, lo, hi)`` for every block."""
        for block, (lo, hi) in enumerate(self.bounds):
            yield block, lo, hi

    def concat_blocks(self, pieces: Sequence[SparseGradient]) -> SparseGradient:
        """Merge per-block sparse gradients (disjoint coordinate ranges) into
        one sparse gradient over the full vector."""
        if len(pieces) == 0:
            return SparseGradient.empty(self.length)
        return SparseGradient.merge_many(pieces)
