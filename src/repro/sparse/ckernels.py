"""Loader for the optional compiled merge kernels.

``_merge_kernels.c`` is compiled once per machine into a content-addressed
shared object under the system temp directory (so repeated runs and test
invocations reuse it) and bound through :mod:`ctypes`.  Everything is
best-effort: no compiler, no write permission, or any compile/load failure
simply yields ``None`` and the callers keep using the vectorized NumPy
kernels.  No build step, no new dependency.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from pathlib import Path
from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = ["load_merge_kernels", "CMergeKernels"]

#: Must match MAX_STREAMS in _merge_kernels.c.
MAX_STREAMS = 256

_SOURCE = Path(__file__).with_name("_merge_kernels.c")

_I64_P = ctypes.POINTER(ctypes.c_int64)
_F64_P = ctypes.POINTER(ctypes.c_double)


class CMergeKernels:
    """ctypes bindings over the compiled merge kernels."""

    def __init__(self, lib: ctypes.CDLL) -> None:
        self._merge_add = lib.merge_add_i64_f64
        self._merge_add.restype = ctypes.c_int64
        self._merge_add.argtypes = [
            ctypes.c_int64, _I64_P, _F64_P,
            ctypes.c_int64, _I64_P, _F64_P,
            _I64_P, _F64_P,
        ]
        merge_many_argtypes = [
            ctypes.c_int64,
            ctypes.POINTER(ctypes.c_void_p),
            ctypes.POINTER(ctypes.c_void_p),
            _I64_P,
            _I64_P, _F64_P,
        ]
        #: Reference O(total * streams) head-scan kernel, kept callable for
        #: the perf-regression benchmark (bench_merge_tree.py).
        self._merge_many_headscan = lib.merge_many_i64_f64
        self._merge_many_headscan.restype = ctypes.c_int64
        self._merge_many_headscan.argtypes = merge_many_argtypes
        #: Production O(total * log streams) tournament-tree kernel.
        self._merge_many_tournament = lib.merge_many_tournament_i64_f64
        self._merge_many_tournament.restype = ctypes.c_int64
        self._merge_many_tournament.argtypes = merge_many_argtypes

    @staticmethod
    def _i64(array: np.ndarray):
        return array.ctypes.data_as(_I64_P)

    @staticmethod
    def _f64(array: np.ndarray):
        return array.ctypes.data_as(_F64_P)

    def merge_add(self, a_indices: np.ndarray, a_values: np.ndarray,
                  b_indices: np.ndarray, b_values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        # The kernel reads raw data pointers; a strided view (legal input at
        # the SparseGradient API boundary) must be compacted first.  This is
        # a no-op for the contiguous arrays the internal kernels produce.
        a_indices = np.ascontiguousarray(a_indices)
        a_values = np.ascontiguousarray(a_values)
        b_indices = np.ascontiguousarray(b_indices)
        b_values = np.ascontiguousarray(b_values)
        na, nb = a_indices.shape[0], b_indices.shape[0]
        out_indices = np.empty(na + nb, dtype=np.int64)
        out_values = np.empty(na + nb, dtype=np.float64)
        count = self._merge_add(
            na, self._i64(a_indices), self._f64(a_values),
            nb, self._i64(b_indices), self._f64(b_values),
            self._i64(out_indices), self._f64(out_values),
        )
        return out_indices[:count], out_values[:count]

    def merge_many(self, index_streams: Sequence[np.ndarray],
                   value_streams: Sequence[np.ndarray],
                   impl: str = "tournament") -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """K-way merge; returns ``None`` when the stream count exceeds the
        compiled kernel's capacity (callers then fall back).

        ``impl`` selects the kernel: ``"tournament"`` (default, the
        O(total * log streams) winner tree) or ``"headscan"`` (the reference
        O(total * streams) scan, kept for the perf-regression benchmark).
        Both produce bit-identical output.
        """
        kernel = (self._merge_many_tournament if impl == "tournament"
                  else self._merge_many_headscan)
        k = len(index_streams)
        if k > MAX_STREAMS:
            return None
        index_streams = [np.ascontiguousarray(stream) for stream in index_streams]
        value_streams = [np.ascontiguousarray(stream) for stream in value_streams]
        total = sum(stream.shape[0] for stream in index_streams)
        out_indices = np.empty(total, dtype=np.int64)
        out_values = np.empty(total, dtype=np.float64)
        index_ptrs = (ctypes.c_void_p * k)(*[stream.ctypes.data for stream in index_streams])
        value_ptrs = (ctypes.c_void_p * k)(*[stream.ctypes.data for stream in value_streams])
        lengths = np.fromiter((stream.shape[0] for stream in index_streams),
                              dtype=np.int64, count=k)
        count = kernel(
            k,
            ctypes.cast(index_ptrs, ctypes.POINTER(ctypes.c_void_p)),
            ctypes.cast(value_ptrs, ctypes.POINTER(ctypes.c_void_p)),
            self._i64(lengths),
            self._i64(out_indices), self._f64(out_values),
        )
        if count < 0:  # pragma: no cover - guarded by the k check above
            return None
        return out_indices[:count], out_values[:count]


def _cache_path(source: str) -> Optional[Path]:
    """Content-addressed ``.so`` path in a private per-user cache directory.

    A world-writable location (e.g. the shared temp dir) would let another
    local user pre-plant a malicious library at the predictable path, so the
    cache lives under ``$XDG_CACHE_HOME`` / ``~/.cache`` with mode 0700.
    Returns ``None`` when no such directory can be prepared (the caller then
    compiles into a throwaway directory instead of caching).
    """
    digest = hashlib.sha256(source.encode()).hexdigest()[:16]
    base = os.environ.get("XDG_CACHE_HOME") or (Path.home() / ".cache")
    cache_dir = Path(base) / "repro-merge-kernels"
    try:
        cache_dir.mkdir(parents=True, exist_ok=True)
        cache_dir.chmod(0o700)
    except OSError:
        return None
    return cache_dir / f"merge_kernels_{digest}.so"


def _load(path: Path) -> Optional[CMergeKernels]:
    try:
        return CMergeKernels(ctypes.CDLL(str(path)))
    except (OSError, AttributeError):
        return None


def load_merge_kernels() -> Optional[CMergeKernels]:
    """Compile (once per user and source version) and load the C merge
    kernels; ``None`` on any failure."""
    if os.environ.get("REPRO_DISABLE_CKERNELS"):
        return None
    try:
        source = _SOURCE.read_text()
    except OSError:
        return None
    cached = _cache_path(source)
    if cached is not None and cached.exists():
        try:
            if cached.stat().st_uid != os.getuid():
                return None
        except (OSError, AttributeError):  # no getuid on some platforms
            return None
        return _load(cached)
    compiler = os.environ.get("CC", "cc")
    try:
        with tempfile.TemporaryDirectory(
            dir=cached.parent if cached is not None else None
        ) as tmp:
            tmp_so = Path(tmp) / "merge_kernels.so"
            subprocess.run(
                [compiler, "-O3", "-shared", "-fPIC", "-o", str(tmp_so), str(_SOURCE)],
                check=True, capture_output=True, timeout=120,
            )
            if cached is not None:
                os.replace(tmp_so, cached)
                return _load(cached)
            # No cache available: load from the throwaway dir (the dynamic
            # loader keeps the mapping alive after the file is removed).
            return _load(tmp_so)
    except (OSError, subprocess.SubprocessError):
        return None
