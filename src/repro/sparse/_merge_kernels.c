/* Two-pointer / k-way merge-add kernels for sorted COO gradient streams.
 *
 * Compiled on demand by repro.sparse.ckernels (cc -O3 -shared -fPIC); the
 * package falls back to vectorized NumPy kernels when no compiler is
 * available, so this file is an accelerator, not a dependency.
 *
 * Bit-exactness contract: duplicate indices are accumulated strictly
 * left-to-right in stream order starting from +0.0, which reproduces the
 * seed implementation (np.add.at over a stream-ordered concatenation)
 * bit-for-bit.
 */

#include <stdint.h>

#define MAX_STREAMS 256

/* Merge-add two sorted-unique COO streams.  Writes at most na + nb entries
 * into out_indices / out_values; returns the number written. */
int64_t merge_add_i64_f64(
    int64_t na, const int64_t *ai, const double *av,
    int64_t nb, const int64_t *bi, const double *bv,
    int64_t *out_indices, double *out_values)
{
    int64_t i = 0, j = 0, o = 0;
    while (i < na && j < nb) {
        int64_t x = ai[i], y = bi[j];
        if (x < y) {
            out_indices[o] = x;
            out_values[o] = 0.0 + av[i];
            i++;
        } else if (y < x) {
            out_indices[o] = y;
            out_values[o] = 0.0 + bv[j];
            j++;
        } else {
            out_indices[o] = x;
            out_values[o] = 0.0 + av[i] + bv[j];
            i++;
            j++;
        }
        o++;
    }
    for (; i < na; i++, o++) {
        out_indices[o] = ai[i];
        out_values[o] = 0.0 + av[i];
    }
    for (; j < nb; j++, o++) {
        out_indices[o] = bi[j];
        out_values[o] = 0.0 + bv[j];
    }
    return o;
}

/* K-way merge-add of sorted COO streams (duplicates allowed both across and
 * within a stream).  Equal indices are consumed stream by stream in stream
 * order, so the accumulation matches a sequential pairwise left fold.
 * Returns the number of entries written, or -1 if num_streams exceeds
 * MAX_STREAMS.
 *
 * This is the reference head-scan kernel: every output entry rescans all
 * stream heads, O(total * streams).  merge_many_tournament_i64_f64 below is
 * the production kernel; this one is kept callable for the perf-regression
 * benchmark that proves the tournament tree wins at wide fan-ins. */
int64_t merge_many_i64_f64(
    int64_t num_streams,
    const int64_t **indices,
    const double **values,
    const int64_t *lengths,
    int64_t *out_indices,
    double *out_values)
{
    int64_t cursor[MAX_STREAMS];
    int64_t s, o = 0;
    if (num_streams > MAX_STREAMS)
        return -1;
    for (s = 0; s < num_streams; s++)
        cursor[s] = 0;
    for (;;) {
        int64_t best = 0;
        int found = 0;
        for (s = 0; s < num_streams; s++) {
            if (cursor[s] < lengths[s]) {
                int64_t head = indices[s][cursor[s]];
                if (!found || head < best) {
                    best = head;
                    found = 1;
                }
            }
        }
        if (!found)
            break;
        {
            double acc = 0.0;
            for (s = 0; s < num_streams; s++) {
                while (cursor[s] < lengths[s] && indices[s][cursor[s]] == best) {
                    acc += values[s][cursor[s]];
                    cursor[s]++;
                }
            }
            out_indices[o] = best;
            out_values[o] = acc;
            o++;
        }
    }
    return o;
}

/* Tournament-tree k-way merge-add: same contract and bit-identical output as
 * merge_many_i64_f64, but O(total * log streams) instead of
 * O(total * streams).
 *
 * A complete winner tree over the (padded to a power of two) stream heads is
 * kept in an implicit array: leaves at win[width + s] hold stream ids, every
 * internal node holds the id of the smaller-keyed child, with ties going to
 * the left child.  Because the leaf layout is in stream order, the left
 * child always covers lower stream ids, so among equal head indices the
 * root is the *lowest* stream id — equal indices are therefore consumed in
 * stream order and the accumulation reproduces the head scan (and the seed's
 * sequential pairwise left fold) bit for bit.  Advancing a stream only
 * replays its leaf-to-root path.
 *
 * INT64_MAX marks an exhausted stream; it cannot collide with a real index
 * because indices live in [0, length) with length itself at most INT64_MAX.
 */
int64_t merge_many_tournament_i64_f64(
    int64_t num_streams,
    const int64_t **indices,
    const double **values,
    const int64_t *lengths,
    int64_t *out_indices,
    double *out_values)
{
    int64_t cursor[MAX_STREAMS];
    int64_t key[MAX_STREAMS];
    int32_t win[2 * MAX_STREAMS];
    int64_t s, node, width, o = 0;

    if (num_streams > MAX_STREAMS)
        return -1;
    if (num_streams <= 0)
        return 0;

    width = 1;  /* MAX_STREAMS is a power of two, so width <= MAX_STREAMS */
    while (width < num_streams)
        width <<= 1;

    for (s = 0; s < width; s++) {
        cursor[s] = 0;
        key[s] = (s < num_streams && lengths[s] > 0) ? indices[s][0] : INT64_MAX;
        win[width + s] = (int32_t)s;
    }
    for (node = width - 1; node >= 1; node--) {
        int32_t a = win[2 * node], b = win[2 * node + 1];
        win[node] = (key[b] < key[a]) ? b : a;
    }

    while (key[win[1]] != INT64_MAX) {
        int64_t best = key[win[1]];
        double acc = 0.0;
        do {
            s = win[1];
            do {  /* drain this stream's duplicates of `best` in one go */
                acc += values[s][cursor[s]];
                cursor[s]++;
            } while (cursor[s] < lengths[s] && indices[s][cursor[s]] == best);
            key[s] = (cursor[s] < lengths[s]) ? indices[s][cursor[s]] : INT64_MAX;
            for (node = (width + s) >> 1; node >= 1; node >>= 1) {
                int32_t a = win[2 * node], b = win[2 * node + 1];
                win[node] = (key[b] < key[a]) ? b : a;
            }
        } while (key[win[1]] == best);
        out_indices[o] = best;
        out_values[o] = acc;
        o++;
    }
    return o;
}
