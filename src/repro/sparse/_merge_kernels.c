/* Two-pointer / k-way merge-add kernels for sorted COO gradient streams.
 *
 * Compiled on demand by repro.sparse.ckernels (cc -O3 -shared -fPIC); the
 * package falls back to vectorized NumPy kernels when no compiler is
 * available, so this file is an accelerator, not a dependency.
 *
 * Bit-exactness contract: duplicate indices are accumulated strictly
 * left-to-right in stream order starting from +0.0, which reproduces the
 * seed implementation (np.add.at over a stream-ordered concatenation)
 * bit-for-bit.
 */

#include <stdint.h>

#define MAX_STREAMS 256

/* Merge-add two sorted-unique COO streams.  Writes at most na + nb entries
 * into out_indices / out_values; returns the number written. */
int64_t merge_add_i64_f64(
    int64_t na, const int64_t *ai, const double *av,
    int64_t nb, const int64_t *bi, const double *bv,
    int64_t *out_indices, double *out_values)
{
    int64_t i = 0, j = 0, o = 0;
    while (i < na && j < nb) {
        int64_t x = ai[i], y = bi[j];
        if (x < y) {
            out_indices[o] = x;
            out_values[o] = 0.0 + av[i];
            i++;
        } else if (y < x) {
            out_indices[o] = y;
            out_values[o] = 0.0 + bv[j];
            j++;
        } else {
            out_indices[o] = x;
            out_values[o] = 0.0 + av[i] + bv[j];
            i++;
            j++;
        }
        o++;
    }
    for (; i < na; i++, o++) {
        out_indices[o] = ai[i];
        out_values[o] = 0.0 + av[i];
    }
    for (; j < nb; j++, o++) {
        out_indices[o] = bi[j];
        out_values[o] = 0.0 + bv[j];
    }
    return o;
}

/* K-way merge-add of sorted COO streams (duplicates allowed both across and
 * within a stream).  Equal indices are consumed stream by stream in stream
 * order, so the accumulation matches a sequential pairwise left fold.
 * Returns the number of entries written, or -1 if num_streams exceeds
 * MAX_STREAMS. */
int64_t merge_many_i64_f64(
    int64_t num_streams,
    const int64_t **indices,
    const double **values,
    const int64_t *lengths,
    int64_t *out_indices,
    double *out_values)
{
    int64_t cursor[MAX_STREAMS];
    int64_t s, o = 0;
    if (num_streams > MAX_STREAMS)
        return -1;
    for (s = 0; s < num_streams; s++)
        cursor[s] = 0;
    for (;;) {
        int64_t best = 0;
        int found = 0;
        for (s = 0; s < num_streams; s++) {
            if (cursor[s] < lengths[s]) {
                int64_t head = indices[s][cursor[s]];
                if (!found || head < best) {
                    best = head;
                    found = 1;
                }
            }
        }
        if (!found)
            break;
        {
            double acc = 0.0;
            for (s = 0; s < num_streams; s++) {
                while (cursor[s] < lengths[s] && indices[s][cursor[s]] == best) {
                    acc += values[s][cursor[s]];
                    cursor[s]++;
                }
            }
            out_indices[o] = best;
            out_values[o] = acc;
            o++;
        }
    }
    return o;
}
