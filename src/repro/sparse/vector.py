"""Sparse gradients in coordinate (COO) form.

The paper transmits sparse gradients as ``(index, value)`` pairs, so every
non-zero costs two elements of bandwidth.  :class:`SparseGradient` is an
immutable-by-convention container over sorted, unique indices; it provides
exactly the operations the communication algorithms need:

* construction from a dense vector (optionally restricted to a block),
* merge-summation of two (or many) sparse gradients — the operation whose
  output can be larger than its inputs, the root of the SGA dilemma,
* exact top-k re-sparsification with the discarded remainder returned so
  residual collection can keep it,
* densification and block restriction.

The merge kernels are the synchronisation hot path, so they are written as
vectorized linear merges over the already-sorted COO streams (no
``np.unique`` re-sort, no ``np.add.at``) and construct their results through
the trusted :meth:`SparseGradient.from_sorted_unique` constructor, which
skips the invariant re-validation of :meth:`__post_init__`.  Full validation
happens only at the API boundaries (``__init__`` / :meth:`from_dense`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from .ckernels import load_merge_kernels
from .topk import threshold_indices, top_k_indices

try:  # compiled CSR segment-sum kernels; optional, gated at import time
    from scipy.sparse import _sparsetools as _csr_tools

    _HAVE_CSR_TOOLS = hasattr(_csr_tools, "csr_sum_duplicates")
except ImportError:  # pragma: no cover - exercised via monkeypatched tests
    _csr_tools = None
    _HAVE_CSR_TOOLS = False

#: Compiled single-pass merge kernels, loaded lazily on first use so that
#: importing the package never blocks on a ``cc`` subprocess.  ``None`` means
#: the NumPy fallback kernels; the unset sentinel means "not probed yet".
_C_KERNELS_UNSET = object()
_C_KERNELS = _C_KERNELS_UNSET


def _get_c_kernels():
    global _C_KERNELS
    if _C_KERNELS is _C_KERNELS_UNSET:
        _C_KERNELS = load_merge_kernels()
    return _C_KERNELS


def compiled_kernels_available() -> bool:
    """Whether the compiled C merge kernels are active in this process.

    Probes (and caches) the lazy loader, honouring ``REPRO_DISABLE_CKERNELS``.
    Process-backed transports use this to verify that spawned workers run
    the same kernel path as the parent — a worker silently falling back to
    the NumPy kernels while the parent runs compiled ones (or vice versa)
    would make the two CI matrix legs meaningless inside workers.
    """
    return _get_c_kernels() is not None


__all__ = ["SparseGradient", "compiled_kernels_available",
           "merge_add_coo", "merge_many_coo"]


def _stable_merge_sorted(index_streams: Sequence[np.ndarray],
                         value_streams: Sequence[np.ndarray]) -> Tuple[np.ndarray, np.ndarray]:
    """Merge already-sorted COO streams into one index-sorted stream.

    Duplicates are kept, ordered by stream (stability) so that a later
    segment-sum accumulates values in stream order.  The fast path packs
    ``index * 2^shift + position`` into one int64 key per entry and sorts the
    keys directly: timsort gallops through the pre-sorted runs in near-linear
    time, and sorting scalar keys avoids the indirection cost of a stable
    ``argsort``.  Falls back to ``argsort`` when the pack could overflow.
    """
    indices = np.concatenate(index_streams)
    values = np.concatenate(value_streams)
    m = indices.shape[0]
    if m <= 1:
        return indices, values
    shift = (m - 1).bit_length()
    max_index = int(max(int(stream[-1]) for stream in index_streams if stream.shape[0]))
    if max_index < (1 << (62 - shift)):
        keys = indices << shift
        keys += np.arange(m, dtype=np.int64)
        keys.sort(kind="stable")
        pos = keys & ((1 << shift) - 1)
        keys >>= shift
        return keys, values[pos]
    order = np.argsort(indices, kind="stable")
    return indices[order], values[order]


def _tree_merge_sorted(index_streams: Sequence[np.ndarray],
                       value_streams: Sequence[np.ndarray]) -> Tuple[np.ndarray, np.ndarray]:
    """Tournament-bracket merge of sorted COO streams (NumPy counterpart of
    the compiled tournament-tree kernel).

    Streams are merged pairwise in rounds — a bracket of vectorized two-way
    merges — so the total comparison work is O(total * log streams).  Only
    the *index* arrays (with their positions in the stream-order
    concatenation) travel through the bracket; the values are gathered once
    at the end, so the later segment-sum still accumulates duplicates
    strictly in stream order and the result stays bit-identical to the seed
    fold.

    This is the *reference* mirror of the compiled kernel's bracket order,
    used by the equivalence tests and the ``BENCH_PR3.json`` harness to
    cross-validate the production paths.  It is not the production NumPy
    fallback: the packed-key path of :func:`_stable_merge_sorted` reaches
    the same O(total * log streams) comparison bound through timsort's run
    galloping and wins on constants (each bracket round here pays a full
    NumPy-dispatch pass over the data; see ``numpy_tree_speedup`` in
    ``BENCH_PR3.json``).

    Stability: within a two-way merge, entries of the left run precede equal
    entries of the right run (``side="left"`` / ``side="right"``), and the
    bracket always pairs adjacent runs, so the global order of equal indices
    is exactly the stream order.
    """
    runs = []
    offset = 0
    for stream in index_streams:
        n = stream.shape[0]
        runs.append((stream, np.arange(offset, offset + n, dtype=np.int64)))
        offset += n
    values = np.concatenate(value_streams)
    while len(runs) > 1:
        merged_runs = []
        for left in range(0, len(runs) - 1, 2):
            (ai, ap), (bi, bp) = runs[left], runs[left + 1]
            na, nb = ai.shape[0], bi.shape[0]
            out_i = np.empty(na + nb, dtype=np.int64)
            out_p = np.empty(na + nb, dtype=np.int64)
            slots_a = np.arange(na, dtype=np.int64)
            slots_a += np.searchsorted(bi, ai, side="left")
            slots_b = np.arange(nb, dtype=np.int64)
            slots_b += np.searchsorted(ai, bi, side="right")
            out_i[slots_a] = ai
            out_i[slots_b] = bi
            out_p[slots_a] = ap
            out_p[slots_b] = bp
            merged_runs.append((out_i, out_p))
        if len(runs) % 2:
            merged_runs.append(runs[-1])
        runs = merged_runs
    indices, positions = runs[0]
    return indices, values[positions]


def _segment_sum_sorted(indices: np.ndarray, values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Collapse duplicates of an index-sorted COO stream by summation.

    Accumulation is strictly left-to-right within each duplicate run — both
    in the compiled ``csr_sum_duplicates`` path and the ``np.bincount``
    fallback — which keeps results bit-identical to sequential pairwise
    merging.  (``np.add.reduceat`` would *not* be: its reduction order within
    a segment is unspecified and observably differs from left-to-right.)
    Both input arrays must be freshly allocated; the compiled path compacts
    them in place.
    """
    if _HAVE_CSR_TOOLS:
        indptr = np.array([0, indices.shape[0]], dtype=np.int64)
        _csr_tools.csr_sum_duplicates(1, int(indices[-1]) + 1, indptr, indices, values)
        nnz = int(indptr[1])
        # csr_sum_duplicates seeds each run with its first value rather than
        # 0.0, which leaks -0.0 where every other path produces +0.0; the
        # +0.0 below normalizes the sign bit and changes nothing else.
        out_values = values[:nnz]
        out_values += 0.0
        return indices[:nnz], out_values
    is_start = np.empty(indices.shape[0], dtype=bool)
    is_start[0] = True
    np.not_equal(indices[1:], indices[:-1], out=is_start[1:])
    segment = np.cumsum(is_start) - 1
    return indices[is_start], np.bincount(segment, weights=values)


def merge_add_coo(a_indices: np.ndarray, a_values: np.ndarray,
                  b_indices: np.ndarray, b_values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Linear merge-sum of two sorted-unique COO streams.

    Both index arrays must be sorted ascending and internally unique (the
    :class:`SparseGradient` invariant).  Returns sorted-unique ``(indices,
    values)`` with values summed where supports overlap; for a shared index
    the sum is ``a + b``, matching the accumulation order of the previous
    ``np.unique`` + ``np.add.at`` implementation bit-for-bit.

    Uses the compiled single-pass two-pointer kernel when available,
    otherwise one stable merge plus one segment-sum pass in NumPy.
    """
    kernels = _get_c_kernels()
    if kernels is not None:
        return kernels.merge_add(a_indices, a_values, b_indices, b_values)
    indices, values = _stable_merge_sorted((a_indices, b_indices), (a_values, b_values))
    if indices.shape[0] == 0:
        return indices, values
    return _segment_sum_sorted(indices, values)


def merge_many_coo(index_streams: Sequence[np.ndarray],
                   value_streams: Sequence[np.ndarray]) -> Tuple[np.ndarray, np.ndarray]:
    """K-way merge-sum of sorted-unique COO streams.

    One k-way tournament-tree merge when the compiled kernels are
    available, else one stable merge plus one segment-sum pass in NumPy.
    (The NumPy path keeps the packed-key stable sort: timsort's galloping
    merges the presorted runs in O(total * log streams) comparisons, so it
    already *is* a tournament merge in optimized C — measured in
    ``BENCH_PR3.json`` against the explicit bracket merge of
    :func:`_tree_merge_sorted`, which exists as the readable reference the
    equivalence tests cross-validate against.)  Duplicate values accumulate
    in stream order, so each output value is the left-to-right sum over
    streams — bit-identical to folding :func:`merge_add_coo` pairwise.
    """
    kernels = _get_c_kernels()
    if kernels is not None:
        merged = kernels.merge_many(index_streams, value_streams)
        if merged is not None:
            return merged
    indices, values = _stable_merge_sorted(index_streams, value_streams)
    if indices.shape[0] == 0:
        return indices, values
    return _segment_sum_sorted(indices, values)


@dataclass(frozen=True)
class SparseGradient:
    """A sparse slice of a length-``length`` gradient vector.

    ``indices`` are global coordinates (sorted, unique, ``int64``);
    ``values`` are the corresponding gradient entries (``float64``).
    """

    indices: np.ndarray
    values: np.ndarray
    length: int

    def __post_init__(self) -> None:
        indices = np.asarray(self.indices, dtype=np.int64)
        values = np.asarray(self.values, dtype=np.float64)
        if indices.ndim != 1 or values.ndim != 1:
            raise ValueError("indices and values must be one-dimensional")
        if indices.shape[0] != values.shape[0]:
            raise ValueError("indices and values must have the same length")
        if self.length < 0:
            raise ValueError("length must be non-negative")
        if indices.shape[0]:
            if indices.min() < 0 or indices.max() >= self.length:
                raise ValueError("indices out of range")
            if np.any(np.diff(indices) <= 0):
                # Sort and merge duplicates to restore the invariant.
                order = np.argsort(indices, kind="stable")
                indices, values = merge_many_coo([indices[order]], [values[order]])
        object.__setattr__(self, "indices", indices)
        object.__setattr__(self, "values", values)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_sorted_unique(cls, indices: np.ndarray, values: np.ndarray,
                           length: int) -> "SparseGradient":
        """Trusted constructor: no invariant re-validation.

        The caller guarantees ``indices`` is a sorted, unique ``int64`` array
        within ``[0, length)`` and ``values`` a ``float64`` array of the same
        shape.  Every kernel in this module and its consumers (merge, top-k
        split, restrict, scale) already produces arrays with these
        properties, so re-checking them on each internal construction would
        dominate the hot path.  External callers must use ``SparseGradient``
        / :meth:`from_dense`, which validate.
        """
        obj = object.__new__(cls)
        object.__setattr__(obj, "indices", indices)
        object.__setattr__(obj, "values", values)
        object.__setattr__(obj, "length", length)
        return obj

    @classmethod
    def empty(cls, length: int) -> "SparseGradient":
        """An all-zero sparse gradient over a vector of ``length`` entries."""
        if length < 0:
            raise ValueError("length must be non-negative")
        return cls.from_sorted_unique(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64), length
        )

    @classmethod
    def from_dense(cls, dense: np.ndarray, indices: Optional[np.ndarray] = None,
                   offset: int = 0, length: Optional[int] = None) -> "SparseGradient":
        """Build from a dense array.

        With ``indices`` given, only those (local) positions are kept; the
        ``offset`` shifts them into global coordinates.  Without ``indices``
        all non-zero positions are kept.
        """
        dense = np.asarray(dense, dtype=np.float64)
        if length is None:
            length = offset + dense.shape[0]
        if indices is None:
            indices = np.flatnonzero(dense)
        indices = np.asarray(indices, dtype=np.int64)
        values = dense[indices]
        return cls(indices + offset, values, length)

    @classmethod
    def top_k_of_dense(cls, dense: np.ndarray, k: int, offset: int = 0,
                       length: Optional[int] = None) -> Tuple["SparseGradient", np.ndarray]:
        """Top-k selection on a dense block.

        Returns ``(selected, residual_dense)`` where ``residual_dense`` is
        the dense block with the selected entries zeroed (the local residual
        of error feedback).
        """
        dense = np.asarray(dense, dtype=np.float64)
        picked = top_k_indices(dense, k)
        selected = cls.from_dense(dense, picked, offset=offset, length=length)
        residual = dense.copy()
        residual[picked] = 0.0
        return selected, residual

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored non-zero entries (``int``)."""
        return int(self.indices.shape[0])

    @property
    def comm_size(self) -> float:
        """Transmission size in elements: one index plus one value per entry
        (the COO convention used by the paper's cost analysis)."""
        return 2.0 * self.nnz

    def to_dense(self, length: Optional[int] = None) -> np.ndarray:
        """Densify into a fresh ``float64`` array of ``length`` entries
        (defaults to :attr:`length`)."""
        length = self.length if length is None else length
        dense = np.zeros(length, dtype=np.float64)
        dense[self.indices] = self.values
        return dense

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def add(self, other: "SparseGradient") -> "SparseGradient":
        """Merge-sum with another :class:`SparseGradient` over the same
        vector; returns a new sparse gradient (inputs are unchanged)."""
        if other.length != self.length:
            raise ValueError("cannot add sparse gradients of different lengths")
        if self.nnz == 0:
            return other
        if other.nnz == 0:
            return self
        indices, values = merge_add_coo(self.indices, self.values,
                                        other.indices, other.values)
        return SparseGradient.from_sorted_unique(indices, values, self.length)

    @staticmethod
    def merge_many(pieces: Sequence["SparseGradient"]) -> "SparseGradient":
        """Merge-sum a non-empty sequence of sparse gradients in one pass.

        Equivalent to (and bit-identical with) folding :meth:`add` over the
        sequence, but a single k-way gather merge instead of repeated
        pairwise merges.
        """
        if not pieces:
            raise ValueError("merge_many needs at least one sparse gradient")
        length = pieces[0].length
        for piece in pieces[1:]:
            if piece.length != length:
                raise ValueError("cannot merge sparse gradients of different lengths")
        nonempty = [piece for piece in pieces if piece.nnz]
        if not nonempty:
            return pieces[0]
        if len(nonempty) == 1:
            return nonempty[0]
        indices, values = merge_many_coo([piece.indices for piece in nonempty],
                                         [piece.values for piece in nonempty])
        return SparseGradient.from_sorted_unique(indices, values, length)

    def scale(self, factor: float) -> "SparseGradient":
        """A new sparse gradient with every value multiplied by ``factor``
        (indices shared, not copied)."""
        return SparseGradient.from_sorted_unique(
            self.indices, self.values * float(factor), self.length
        )

    # ------------------------------------------------------------------
    # sparsification
    # ------------------------------------------------------------------
    def top_k(self, k: int) -> Tuple["SparseGradient", "SparseGradient"]:
        """Keep the top-k entries; return ``(kept, dropped)``."""
        if k >= self.nnz:
            return self, SparseGradient.empty(self.length)
        if k <= 0:
            return SparseGradient.empty(self.length), self
        picked_local = top_k_indices(self.values, k)
        return self._split(picked_local)

    def threshold(self, tau: float) -> Tuple["SparseGradient", "SparseGradient"]:
        """Threshold pruning; return ``(kept, dropped)``."""
        picked_local = threshold_indices(self.values, tau)
        return self._split(picked_local)

    def _split(self, picked_local: np.ndarray) -> Tuple["SparseGradient", "SparseGradient"]:
        """Split into (picked, rest) by sorted local positions."""
        mask = np.zeros(self.nnz, dtype=bool)
        mask[picked_local] = True
        kept = SparseGradient.from_sorted_unique(
            self.indices[mask], self.values[mask], self.length
        )
        dropped = SparseGradient.from_sorted_unique(
            self.indices[~mask], self.values[~mask], self.length
        )
        return kept, dropped

    # ------------------------------------------------------------------
    # slicing
    # ------------------------------------------------------------------
    def restrict(self, lo: int, hi: int) -> "SparseGradient":
        """Entries with ``lo <= index < hi`` (still in global coordinates)."""
        start = int(np.searchsorted(self.indices, lo, side="left"))
        stop = int(np.searchsorted(self.indices, hi, side="left"))
        return SparseGradient.from_sorted_unique(
            self.indices[start:stop], self.values[start:stop], self.length
        )

    def index_set(self) -> set:
        """The non-zero support as a Python ``set`` of ``int`` indices."""
        return set(self.indices.tolist())

    def __len__(self) -> int:
        """Alias for :attr:`nnz`."""
        return self.nnz

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SparseGradient(nnz={self.nnz}, length={self.length})"
