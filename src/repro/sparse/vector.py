"""Sparse gradients in coordinate (COO) form.

The paper transmits sparse gradients as ``(index, value)`` pairs, so every
non-zero costs two elements of bandwidth.  :class:`SparseGradient` is an
immutable-by-convention container over sorted, unique indices; it provides
exactly the operations the communication algorithms need:

* construction from a dense vector (optionally restricted to a block),
* merge-summation of two sparse gradients (the operation whose output can be
  larger than its inputs — the root of the SGA dilemma),
* exact top-k re-sparsification with the discarded remainder returned so
  residual collection can keep it,
* densification and block restriction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .topk import threshold_indices, top_k_indices

__all__ = ["SparseGradient"]


@dataclass(frozen=True)
class SparseGradient:
    """A sparse slice of a length-``length`` gradient vector.

    ``indices`` are global coordinates (sorted, unique, ``int64``);
    ``values`` are the corresponding gradient entries (``float64``).
    """

    indices: np.ndarray
    values: np.ndarray
    length: int

    def __post_init__(self) -> None:
        indices = np.asarray(self.indices, dtype=np.int64)
        values = np.asarray(self.values, dtype=np.float64)
        if indices.ndim != 1 or values.ndim != 1:
            raise ValueError("indices and values must be one-dimensional")
        if indices.shape[0] != values.shape[0]:
            raise ValueError("indices and values must have the same length")
        if self.length < 0:
            raise ValueError("length must be non-negative")
        if indices.shape[0]:
            if indices.min() < 0 or indices.max() >= self.length:
                raise ValueError("indices out of range")
            if np.any(np.diff(indices) <= 0):
                # Sort and merge duplicates to restore the invariant.
                order = np.argsort(indices, kind="stable")
                indices = indices[order]
                values = values[order]
                unique, inverse = np.unique(indices, return_inverse=True)
                summed = np.zeros(unique.shape[0], dtype=np.float64)
                np.add.at(summed, inverse, values)
                indices, values = unique, summed
        object.__setattr__(self, "indices", indices)
        object.__setattr__(self, "values", values)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, length: int) -> "SparseGradient":
        return cls(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64), length)

    @classmethod
    def from_dense(cls, dense: np.ndarray, indices: Optional[np.ndarray] = None,
                   offset: int = 0, length: Optional[int] = None) -> "SparseGradient":
        """Build from a dense array.

        With ``indices`` given, only those (local) positions are kept; the
        ``offset`` shifts them into global coordinates.  Without ``indices``
        all non-zero positions are kept.
        """
        dense = np.asarray(dense, dtype=np.float64)
        if length is None:
            length = offset + dense.shape[0]
        if indices is None:
            indices = np.flatnonzero(dense)
        indices = np.asarray(indices, dtype=np.int64)
        values = dense[indices]
        return cls(indices + offset, values, length)

    @classmethod
    def top_k_of_dense(cls, dense: np.ndarray, k: int, offset: int = 0,
                       length: Optional[int] = None) -> Tuple["SparseGradient", np.ndarray]:
        """Top-k selection on a dense block.

        Returns ``(selected, residual_dense)`` where ``residual_dense`` is
        the dense block with the selected entries zeroed (the local residual
        of error feedback).
        """
        dense = np.asarray(dense, dtype=np.float64)
        picked = top_k_indices(dense, k)
        selected = cls.from_dense(dense, picked, offset=offset, length=length)
        residual = dense.copy()
        residual[picked] = 0.0
        return selected, residual

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.indices.shape[0])

    @property
    def comm_size(self) -> float:
        """Transmission size in elements: one index plus one value per entry
        (the COO convention used by the paper's cost analysis)."""
        return 2.0 * self.nnz

    def to_dense(self, length: Optional[int] = None) -> np.ndarray:
        length = self.length if length is None else length
        dense = np.zeros(length, dtype=np.float64)
        dense[self.indices] = self.values
        return dense

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def add(self, other: "SparseGradient") -> "SparseGradient":
        """Merge-sum with another sparse gradient over the same vector."""
        if other.length != self.length:
            raise ValueError("cannot add sparse gradients of different lengths")
        if self.nnz == 0:
            return other
        if other.nnz == 0:
            return self
        indices = np.concatenate([self.indices, other.indices])
        values = np.concatenate([self.values, other.values])
        unique, inverse = np.unique(indices, return_inverse=True)
        summed = np.zeros(unique.shape[0], dtype=np.float64)
        np.add.at(summed, inverse, values)
        return SparseGradient(unique, summed, self.length)

    def scale(self, factor: float) -> "SparseGradient":
        return SparseGradient(self.indices, self.values * float(factor), self.length)

    # ------------------------------------------------------------------
    # sparsification
    # ------------------------------------------------------------------
    def top_k(self, k: int) -> Tuple["SparseGradient", "SparseGradient"]:
        """Keep the top-k entries; return ``(kept, dropped)``."""
        if k >= self.nnz:
            return self, SparseGradient.empty(self.length)
        if k <= 0:
            return SparseGradient.empty(self.length), self
        picked_local = top_k_indices(self.values, k)
        mask = np.zeros(self.nnz, dtype=bool)
        mask[picked_local] = True
        kept = SparseGradient(self.indices[mask], self.values[mask], self.length)
        dropped = SparseGradient(self.indices[~mask], self.values[~mask], self.length)
        return kept, dropped

    def threshold(self, tau: float) -> Tuple["SparseGradient", "SparseGradient"]:
        """Threshold pruning; return ``(kept, dropped)``."""
        picked_local = threshold_indices(self.values, tau)
        mask = np.zeros(self.nnz, dtype=bool)
        mask[picked_local] = True
        kept = SparseGradient(self.indices[mask], self.values[mask], self.length)
        dropped = SparseGradient(self.indices[~mask], self.values[~mask], self.length)
        return kept, dropped

    # ------------------------------------------------------------------
    # slicing
    # ------------------------------------------------------------------
    def restrict(self, lo: int, hi: int) -> "SparseGradient":
        """Entries with ``lo <= index < hi`` (still in global coordinates)."""
        mask = (self.indices >= lo) & (self.indices < hi)
        return SparseGradient(self.indices[mask], self.values[mask], self.length)

    def index_set(self) -> set:
        return set(int(i) for i in self.indices)

    def __len__(self) -> int:
        return self.nnz

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SparseGradient(nnz={self.nnz}, length={self.length})"
