"""Seeded synthetic datasets for the paper's seven evaluation cases.

The paper trains on CIFAR-10/100, ImageNet, the House price dataset, IMDB,
PTB and Wikipedia — none of which can be bundled or downloaded here.  Each
generator below produces a synthetic dataset with the same input/target
*structure* (image tensors, class-conditional token sequences, Markov-chain
corpora) and, crucially, learnable signal, so the convergence experiments can
show accuracy/loss improving over epochs with the gradient statistics that
drive sparsification behaviour.
"""

from __future__ import annotations


import numpy as np

from .datasets import Dataset, TaskType

__all__ = [
    "synthetic_image_classification",
    "synthetic_image_regression",
    "synthetic_text_classification",
    "synthetic_language_modeling",
    "synthetic_masked_lm",
]


def synthetic_image_classification(num_samples: int = 512, num_classes: int = 10,
                                   image_size: int = 16, channels: int = 3,
                                   noise: float = 0.6, seed: int = 0,
                                   name: str = "synthetic-cifar") -> Dataset:
    """Images drawn from per-class prototypes plus Gaussian noise.

    Stands in for CIFAR-10 / CIFAR-100 / ImageNet (Cases 1-3).  Each class has
    a random low-frequency prototype pattern; samples are the prototype plus
    noise, so a CNN can learn the classes but not trivially.
    """
    if num_samples <= 0 or num_classes <= 1:
        raise ValueError("need at least one sample and two classes")
    rng = np.random.default_rng(seed)
    # Low-frequency prototypes: upsampled coarse random grids.
    coarse = max(2, image_size // 4)
    prototypes = rng.normal(0.0, 1.0, size=(num_classes, channels, coarse, coarse))
    repeat = int(np.ceil(image_size / coarse))
    prototypes = np.repeat(np.repeat(prototypes, repeat, axis=2), repeat, axis=3)
    prototypes = prototypes[:, :, :image_size, :image_size]

    labels = rng.integers(0, num_classes, size=num_samples)
    images = prototypes[labels] + noise * rng.normal(size=(num_samples, channels,
                                                           image_size, image_size))
    return Dataset(images.astype(np.float64), labels.astype(np.int64),
                   TaskType.IMAGE_CLASSIFICATION, name=name)


def synthetic_image_regression(num_samples: int = 512, image_size: int = 16,
                               channels: int = 3, noise: float = 0.3, seed: int = 0,
                               name: str = "synthetic-house") -> Dataset:
    """Images whose scalar target is a smooth function of latent factors.

    Stands in for the House price estimation dataset (Case 4): each sample is
    generated from a small latent vector that controls both the image content
    and the regression target.
    """
    if num_samples <= 0:
        raise ValueError("need at least one sample")
    rng = np.random.default_rng(seed)
    latent_dim = 4
    latents = rng.normal(size=(num_samples, latent_dim))
    # Basis patterns mixing the latent factors into the image.
    basis = rng.normal(size=(latent_dim, channels, image_size, image_size))
    images = np.tensordot(latents, basis, axes=(1, 0))
    images += noise * rng.normal(size=images.shape)
    weights = rng.normal(size=latent_dim)
    targets = latents @ weights + 0.1 * rng.normal(size=num_samples)
    return Dataset(images.astype(np.float64), targets.reshape(-1, 1).astype(np.float64),
                   TaskType.IMAGE_REGRESSION, name=name)


def synthetic_text_classification(num_samples: int = 512, vocab_size: int = 64,
                                  sequence_length: int = 16, num_classes: int = 2,
                                  signal: float = 3.0, seed: int = 0,
                                  name: str = "synthetic-imdb") -> Dataset:
    """Token sequences drawn from class-conditional unigram distributions.

    Stands in for IMDB sentiment classification (Case 5): each class prefers a
    different subset of the vocabulary, so an LSTM (or bag of embeddings) can
    separate the classes.
    """
    if vocab_size <= num_classes:
        raise ValueError("vocab_size must exceed num_classes")
    rng = np.random.default_rng(seed)
    logits = rng.normal(size=(num_classes, vocab_size))
    # Boost a class-specific slice of the vocabulary to create signal.
    slice_size = vocab_size // num_classes
    for label in range(num_classes):
        logits[label, label * slice_size:(label + 1) * slice_size] += signal
    probabilities = np.exp(logits)
    probabilities /= probabilities.sum(axis=1, keepdims=True)

    labels = rng.integers(0, num_classes, size=num_samples)
    sequences = np.zeros((num_samples, sequence_length), dtype=np.int64)
    for index, label in enumerate(labels):
        sequences[index] = rng.choice(vocab_size, size=sequence_length,
                                      p=probabilities[label])
    return Dataset(sequences, labels.astype(np.int64), TaskType.TEXT_CLASSIFICATION,
                   name=name)


def _markov_chain(rng: np.random.Generator, vocab_size: int, concentration: float
                  ) -> np.ndarray:
    """A random row-stochastic transition matrix with peaked rows."""
    matrix = rng.dirichlet(np.full(vocab_size, concentration), size=vocab_size)
    return matrix


def synthetic_language_modeling(num_samples: int = 512, vocab_size: int = 64,
                                sequence_length: int = 16, concentration: float = 0.05,
                                seed: int = 0, name: str = "synthetic-ptb"
                                ) -> Dataset:
    """Next-token prediction over a random Markov chain (Case 6, LSTM-PTB).

    Inputs are token sequences; targets are the same sequences shifted by one
    position (the final target is the token that would follow).
    """
    rng = np.random.default_rng(seed)
    transition = _markov_chain(rng, vocab_size, concentration)
    sequences = np.zeros((num_samples, sequence_length + 1), dtype=np.int64)
    sequences[:, 0] = rng.integers(0, vocab_size, size=num_samples)
    for t in range(1, sequence_length + 1):
        for index in range(num_samples):
            sequences[index, t] = rng.choice(vocab_size, p=transition[sequences[index, t - 1]])
    inputs = sequences[:, :-1]
    targets = sequences[:, 1:]
    return Dataset(inputs, targets, TaskType.LANGUAGE_MODELING, name=name)


def synthetic_masked_lm(num_samples: int = 512, vocab_size: int = 64,
                        sequence_length: int = 16, mask_fraction: float = 0.15,
                        concentration: float = 0.05, seed: int = 0,
                        name: str = "synthetic-wikipedia") -> Dataset:
    """Masked-token prediction over a random Markov chain (Case 7, BERT).

    The last vocabulary id is reserved as the ``[MASK]`` token.  Inputs are
    sequences with ``mask_fraction`` of the positions replaced by the mask id;
    targets hold the original token at masked positions and ``-1`` (the
    ignore index of :class:`repro.nn.losses.CrossEntropyLoss`) elsewhere.
    """
    if not 0 < mask_fraction < 1:
        raise ValueError("mask_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    mask_token = vocab_size - 1
    content_vocab = vocab_size - 1
    transition = _markov_chain(rng, content_vocab, concentration)

    sequences = np.zeros((num_samples, sequence_length), dtype=np.int64)
    sequences[:, 0] = rng.integers(0, content_vocab, size=num_samples)
    for t in range(1, sequence_length):
        for index in range(num_samples):
            sequences[index, t] = rng.choice(content_vocab, p=transition[sequences[index, t - 1]])

    masked = sequences.copy()
    targets = np.full_like(sequences, -1)
    mask = rng.random(sequences.shape) < mask_fraction
    # Guarantee at least one masked position per sequence.
    rows_without_mask = np.flatnonzero(~mask.any(axis=1))
    mask[rows_without_mask, rng.integers(0, sequence_length, size=rows_without_mask.shape[0])] = True
    targets[mask] = sequences[mask]
    masked[mask] = mask_token
    return Dataset(masked, targets, TaskType.MASKED_LM, name=name)
