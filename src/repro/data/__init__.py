"""Synthetic datasets, batching and sharding."""

from .datasets import DataLoader, Dataset, TaskType, shard_dataset, train_test_split
from .synthetic import (
    synthetic_image_classification,
    synthetic_image_regression,
    synthetic_language_modeling,
    synthetic_masked_lm,
    synthetic_text_classification,
)

__all__ = [
    "DataLoader",
    "Dataset",
    "TaskType",
    "shard_dataset",
    "train_test_split",
    "synthetic_image_classification",
    "synthetic_image_regression",
    "synthetic_language_modeling",
    "synthetic_masked_lm",
    "synthetic_text_classification",
]
