"""Dataset containers, splitting and sharding.

A :class:`Dataset` is an in-memory pair of input and target arrays together
with the task type it belongs to.  Data-parallel training shards a dataset
across workers (each worker sees a disjoint contiguous slice, as the paper's
"data shard" in Fig. 4); the :class:`DataLoader` then yields mini-batches
from a shard in a seeded order.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator, Optional, Tuple

import numpy as np

__all__ = ["TaskType", "Dataset", "DataLoader", "shard_dataset", "train_test_split"]


class TaskType(str, Enum):
    """The five task types of the paper's evaluation (Table II)."""

    IMAGE_CLASSIFICATION = "image_classification"
    IMAGE_REGRESSION = "image_regression"
    TEXT_CLASSIFICATION = "text_classification"
    LANGUAGE_MODELING = "language_modeling"
    MASKED_LM = "masked_lm"

    @property
    def is_classification(self) -> bool:
        return self in (TaskType.IMAGE_CLASSIFICATION, TaskType.TEXT_CLASSIFICATION)

    @property
    def is_sequence(self) -> bool:
        return self in (TaskType.TEXT_CLASSIFICATION, TaskType.LANGUAGE_MODELING,
                        TaskType.MASKED_LM)


@dataclass
class Dataset:
    """An in-memory supervised dataset."""

    inputs: np.ndarray
    targets: np.ndarray
    task: TaskType
    name: str = "dataset"

    def __post_init__(self) -> None:
        if self.inputs.shape[0] != self.targets.shape[0]:
            raise ValueError("inputs and targets must have the same number of samples")
        if self.inputs.shape[0] == 0:
            raise ValueError("dataset must not be empty")

    def __len__(self) -> int:
        return int(self.inputs.shape[0])

    def subset(self, indices: np.ndarray, name: Optional[str] = None) -> "Dataset":
        return Dataset(self.inputs[indices], self.targets[indices], self.task,
                       name=name or self.name)

    def batch(self, start: int, stop: int) -> Tuple[np.ndarray, np.ndarray]:
        return self.inputs[start:stop], self.targets[start:stop]


def train_test_split(dataset: Dataset, test_fraction: float = 0.2,
                     seed: int = 0) -> Tuple[Dataset, Dataset]:
    """Shuffle and split a dataset into train and test subsets."""
    if not 0 < test_fraction < 1:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(dataset))
    cut = max(1, int(round(len(dataset) * (1 - test_fraction))))
    cut = min(cut, len(dataset) - 1)
    train = dataset.subset(order[:cut], name=f"{dataset.name}-train")
    test = dataset.subset(order[cut:], name=f"{dataset.name}-test")
    return train, test


def shard_dataset(dataset: Dataset, num_shards: int, shard: int) -> Dataset:
    """The ``shard``-th of ``num_shards`` equally sized contiguous shards.

    Samples that do not divide evenly are assigned to the first shards, so no
    sample is dropped and shards differ in size by at most one.
    """
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    if not 0 <= shard < num_shards:
        raise ValueError("shard index out of range")
    if len(dataset) < num_shards:
        raise ValueError(
            f"cannot shard {len(dataset)} samples across {num_shards} workers"
        )
    indices = np.array_split(np.arange(len(dataset)), num_shards)[shard]
    return dataset.subset(indices, name=f"{dataset.name}-shard{shard}")


class DataLoader:
    """Mini-batch iterator over a dataset with seeded shuffling."""

    def __init__(self, dataset: Dataset, batch_size: int, shuffle: bool = True,
                 seed: int = 0, drop_last: bool = False) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        full, remainder = divmod(len(self.dataset), self.batch_size)
        if remainder and not self.drop_last:
            return full + 1
        return full

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        order = np.arange(len(self.dataset))
        if self.shuffle:
            self._rng.shuffle(order)
        for start in range(0, len(order), self.batch_size):
            batch_indices = order[start:start + self.batch_size]
            if self.drop_last and batch_indices.shape[0] < self.batch_size:
                break
            yield self.dataset.inputs[batch_indices], self.dataset.targets[batch_indices]

    def batches_per_epoch(self) -> int:
        return len(self)
