"""Quickstart: synchronise sparse gradients with SparDL on a simulated cluster.

This example shows the lowest-level use of the library: build a simulated
cluster, wrap it in a :class:`SparDLSynchronizer`, feed it per-worker dense
gradients and inspect the result — the synchronised global gradient, the
communication cost in the alpha-beta model, and the residuals kept by the
global residual collection algorithm.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import ETHERNET, SimulatedCluster, SparDLConfig, SparDLSynchronizer
from repro.analysis import format_table, spardl_complexity
from repro.api import describe, make


def main() -> None:
    num_workers = 8
    num_elements = 10_000
    density = 0.01

    # ------------------------------------------------------------------
    # 1. SparDL on a simulated 8-worker cluster
    # ------------------------------------------------------------------
    cluster = SimulatedCluster(num_workers)
    config = SparDLConfig(density=density)          # k = 1% of the gradients
    spardl = SparDLSynchronizer(cluster, num_elements, config)

    # Each worker produces its own dense gradient (here: random).
    gradients = {worker: np.random.default_rng(worker).normal(size=num_elements)
                 for worker in range(num_workers)}

    result = spardl.synchronize(gradients)

    print("=== SparDL synchronisation ===")
    print(f"workers                  : {num_workers}")
    print(f"gradient size n          : {num_elements}")
    print(f"selected per worker k    : {spardl.k}")
    print(f"all workers consistent   : {result.is_consistent}")
    print(f"non-zeros in global grad : {result.info['final_nnz']}")
    print(f"communication rounds     : {result.stats.rounds}")
    print(f"busiest worker received  : {result.stats.max_received:.0f} elements")
    print(f"simulated time (Ethernet): {result.stats.simulated_time(ETHERNET) * 1e3:.2f} ms")

    # The analytical complexity of Table I for the same parameters.
    bound = spardl_complexity(num_workers, num_elements, spardl.k)
    print(f"Table I says             : {bound.describe()}")

    # Global residual collection keeps every discarded value: the global
    # gradient plus all residuals reconstructs the exact dense sum.
    reconstructed = result.gradient(0) + spardl.residuals.total_residual()
    exact = sum(gradients.values())
    print(f"conservation holds       : {np.allclose(reconstructed, exact)}")

    # ------------------------------------------------------------------
    # 2. Compare against the baseline methods on the same gradients
    #    (every method built from one facade spec string)
    # ------------------------------------------------------------------
    rows = []
    for spec in ("spardl?density=0.01", "ok-topk?density=0.01", "topka?density=0.01",
                 "topkdsa?density=0.01", "gtopk?density=0.01", "dense"):
        cluster = SimulatedCluster(num_workers)
        synchronizer = make(spec, cluster, num_elements=num_elements)
        outcome = synchronizer.synchronize({k: v.copy() for k, v in gradients.items()})
        rows.append((
            describe(synchronizer),
            outcome.stats.rounds,
            outcome.stats.max_received,
            outcome.stats.simulated_time(ETHERNET) * 1e3,
            outcome.is_consistent,
        ))
    print()
    print(format_table(
        ["spec", "rounds", "max received (elems)", "simulated time (ms)", "consistent"],
        rows, title="All methods on the same gradients (P=8, k/n=1%)"))
    print()
    print("Note: at this toy gradient size (n=10,000) the latency term dominates, so")
    print("methods with few rounds look fast despite moving far more data.  The")
    print("benchmark suite prices the same measurements at the paper's model sizes")
    print("(tens of millions of parameters), where SparDL's low bandwidth wins.")


if __name__ == "__main__":
    main()
