"""Choosing the Spar-All-Gather team count d (Section III-D of the paper).

The paper recommends running one epoch with every candidate team count and
keeping the fastest.  This example does exactly that for a 12-worker cluster
on the VGG-16-like case: it measures the per-epoch simulated time of SparDL
with every divisor of P (R-SAG for powers of two, B-SAG otherwise), prints
the ranking, and then verifies the choice by timing a second epoch.

Run with::

    python examples/tune_team_count.py
"""

from __future__ import annotations

from repro.analysis import format_table, spardl_bsag_complexity, spardl_rsag_complexity
from repro.api import make_factory
from repro.comm import ETHERNET, SimulatedCluster
from repro.training import DistributedTrainer, TrainerConfig, get_case

NUM_WORKERS = 12
SAMPLES = 96
DENSITY = 0.02


def divisors(value: int):
    return [d for d in range(1, value + 1) if value % d == 0]


def one_epoch_time(num_teams: int, sag_mode: str, epochs: int = 1) -> tuple[float, float]:
    case = get_case(1)
    train_set, test_set = case.build_datasets(num_samples=SAMPLES, seed=0)
    cluster = SimulatedCluster(NUM_WORKERS)
    spec = f"spardl?density={DENSITY:g}&teams={num_teams}&sag={sag_mode}"
    trainer = DistributedTrainer(
        cluster, make_factory(spec), case.build_model, train_set, test_set,
        config=TrainerConfig(batch_size=8, learning_rate=case.learning_rate,
                             momentum=case.momentum, seed=0),
        network=ETHERNET, compute_profile=case.compute_profile, case_name=case.name,
    )
    history = trainer.train(epochs, eval_every=epochs)
    first_epoch = history.epochs[0].epoch_time
    return first_epoch, history.total_time


def main() -> None:
    print(f"Tuning the team count d for SparDL on {NUM_WORKERS} workers (VGG-16-like case)")
    print()

    candidates = []
    for d in divisors(NUM_WORKERS):
        if d == 1:
            candidates.append((1, "auto", "d=1 (no SAG)"))
        else:
            if d & (d - 1) == 0:
                candidates.append((d, "rsag", f"R-SAG d={d}"))
            candidates.append((d, "bsag", f"B-SAG d={d}"))

    rows = []
    timings = {}
    k = int(DENSITY * get_case(1).build_model(0).num_parameters())
    for d, mode, label in candidates:
        epoch_time, _ = one_epoch_time(d, mode)
        timings[label] = (d, mode, epoch_time)
        if d == 1:
            analytical = "-"
        elif mode == "rsag":
            analytical = spardl_rsag_complexity(NUM_WORKERS, 10 ** 6, k, d).describe()
        else:
            analytical = spardl_bsag_complexity(NUM_WORKERS, 10 ** 6, k, d).describe()
        rows.append((label, epoch_time, analytical))
    rows.sort(key=lambda row: row[1])
    print(format_table(["configuration", "first-epoch time (s)", "Table I complexity"],
                       rows, title="One-epoch timing of every candidate d"))

    best_label = min(timings, key=lambda label: timings[label][2])
    best_d, best_mode, _ = timings[best_label]
    print()
    print(f"Selected configuration: {best_label}")

    # Verify the choice on a longer run, as a user would.
    _, total_best = one_epoch_time(best_d, best_mode, epochs=2)
    _, total_base = one_epoch_time(1, "auto", epochs=2)
    print(f"two-epoch time with {best_label}: {total_best:.2f} s")
    print(f"two-epoch time without SAG     : {total_base:.2f} s")
    print(f"speedup from Spar-All-Gather   : {total_base / total_best:.2f}x")


if __name__ == "__main__":
    main()
