"""Combine SparDL's sparsification with wire value quantization (bits=).

The paper's Section VI names sparsification + quantization as the natural
extension of SparDL.  This example runs the same synchronisation at full
precision and at 8/4/2-bit quantized values (``bits=`` in the facade spec)
and prints the trade-off the combination buys:

* comm volume shrinks toward the ``(1 + b/32)/2`` COO accounting factor
  (each non-zero ships one full-precision index and a ``b``-bit value,
  plus one scale element per message);
* the synchronised gradient stays unbiased, and the exact quantization
  error of every message is kept by the residual error-feedback path, so
  no gradient mass is ever lost (conservation holds to float precision).

Run with::

    python examples/quantized_compression.py
"""

from __future__ import annotations

import numpy as np

from repro import ETHERNET, SimulatedCluster
from repro.analysis import table1
from repro.api import describe, make


def main() -> None:
    num_workers = 8
    num_elements = 20_000
    density = 0.01
    iterations = 5

    print("=== SparDL + value quantization (Section VI extension) ===")
    header = (f"{'spec':38s} {'volume':>10s} {'ratio':>7s} "
              f"{'sim time':>9s} {'conserved':>9s}")
    print(header)
    print("-" * len(header))

    reference_volume = None
    for bits in (None, 8, 4, 2):
        spec = f"spardl?density={density:g}"
        if bits is not None:
            spec += f"&bits={bits}"
        cluster = SimulatedCluster(num_workers)
        sync = make(spec, cluster, num_elements=num_elements)

        total_input = np.zeros(num_elements)
        total_global = np.zeros(num_elements)
        volume = 0.0
        sim_time = 0.0
        for iteration in range(iterations):
            gradients = {w: np.random.default_rng(100 * iteration + w)
                              .normal(size=num_elements)
                         for w in range(num_workers)}
            total_input += sum(gradients.values())
            result = sync.synchronize(gradients)
            assert result.is_consistent
            total_global += result.gradient(0)
            volume += result.stats.total_volume
            sim_time += result.stats.simulated_time(ETHERNET)

        if reference_volume is None:
            reference_volume = volume
        conserved = np.allclose(
            total_global + sync.residuals.total_residual(), total_input)
        print(f"{describe(sync):38s} {volume:10.0f} "
              f"{volume / reference_volume:7.3f} {sim_time * 1e3:7.2f}ms "
              f"{str(conserved):>9s}")

    # The analytical counterpart: Table I with and without quantization.
    print("\nTable I, k = 200, with 8-bit values:")
    rows = table1(num_workers, num_elements, 200, num_bits=8)
    for name in ("SparDL", "SparDL+8bit", "Ok-Topk", "Ok-Topk+8bit"):
        print(f"  {rows[name].describe()}")


if __name__ == "__main__":
    main()
