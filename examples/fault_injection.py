"""Fault injection: drops, retries, stragglers and elastic membership.

The simulated cluster is perfectly reliable by default.  This example
installs a seeded :class:`~repro.comm.faults.FaultPlan` and shows the three
failure axes the robustness layer models:

* **message drops with bounded retry** — dropped sends are retried with
  exponential backoff and every retry/idle round is billed into
  :class:`~repro.comm.stats.CommStats`; past the budget, SparDL degrades
  gracefully by folding the lost sparse mass back into the sender's
  residual (conservation still holds exactly), while the dense baseline's
  reliable transport force-delivers;
* **stragglers and heterogeneous links** — per-iteration compute slowdown
  factors and per-worker network overrides turn the timing model into a
  max over per-worker critical paths;
* **elastic membership** — crash/join events between iterations re-run the
  bag planning for the new worker count and hand residual state off to the
  survivors.

Run with::

    python examples/fault_injection.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ETHERNET,
    FaultPlan,
    MembershipEvent,
    RetryPolicy,
    SimulatedCluster,
    SparDLConfig,
    SparDLSynchronizer,
    SyncSession,
)
from repro.training.timing import ComputeProfile, iteration_time


def main() -> None:
    num_workers = 8
    num_elements = 5_000
    iterations = 6

    plan = FaultPlan(
        seed=7,
        drop_rate=0.25,                 # a quarter of messages vanish...
        retry=RetryPolicy(max_retries=2, backoff=2.0),  # ...retried twice
        straggler_rate=0.2,
        straggler_slowdown=4.0,         # stragglers run up to 4x slower
        worker_profiles={3: ETHERNET.scaled(beta_factor=4.0)},  # slow NIC
        events=[MembershipEvent(iteration=2, kind="crash", worker=5),
                MembershipEvent(iteration=4, kind="join")],
    )

    cluster = SimulatedCluster(num_workers)
    cluster.install_fault_plan(plan)
    sync = SparDLSynchronizer(cluster, num_elements,
                              SparDLConfig(density=0.02, num_teams=2))
    session = SyncSession(sync)
    network = plan.heterogeneous_network(num_workers, ETHERNET)
    compute = ComputeProfile(compute_time_per_update=5e-3,
                             paper_parameters=1e6)

    print("=== SparDL under drops, stragglers and churn ===")
    header = (f"{'it':>2s} {'P':>2s} {'rounds':>6s} {'extra':>5s} "
              f"{'dropped':>7s} {'lost':>4s} {'time':>9s}")
    print(header)
    print("-" * len(header))

    injected = np.zeros(num_elements)
    delivered = np.zeros(num_elements)
    for iteration in range(iterations):
        if session.poll_membership():
            print(f"   -- membership changed: now P={session.num_workers}")
        gradients = {w: np.random.default_rng(50 * iteration + w)
                          .normal(size=num_elements)
                     for w in range(session.num_workers)}
        injected += sum(gradients.values())
        result = session.step(gradients)
        assert result.is_consistent
        delivered += result.gradient(0)
        timing = iteration_time(
            result.stats, network, compute,
            compute_factors=plan.straggler_factors(iteration,
                                                   session.num_workers))
        print(f"{iteration:2d} {session.num_workers:2d} "
              f"{result.stats.rounds:6d} "
              f"{result.stats.fault_extra_rounds:5d} "
              f"{result.stats.dropped_messages:7d} "
              f"{result.stats.lost_messages:4d} "
              f"{timing.total * 1e3:7.2f}ms")
        if result.info.get("lost_messages"):
            print(f"   -- {result.info['lost_messages']} message(s) lost "
                  f"past the retry budget; L1 mass "
                  f"{result.info['lost_mass']:.3f} folded into residuals")

    conservation = np.abs(delivered + sync.residuals.total_residual()
                          - injected).max()
    stats = session.cumulative_stats
    print("-" * len(header))
    print(f"cumulative: {stats.rounds} rounds "
          f"({stats.fault_extra_rounds} from faults), "
          f"{stats.dropped_messages} drops, {stats.retried_messages} retries, "
          f"{stats.lost_messages} losses, {stats.forced_deliveries} forced")
    print(f"conservation |delivered + residuals - injected| = "
          f"{conservation:.2e}  (exact despite every fault above)")
    assert conservation < 1e-9


if __name__ == "__main__":
    main()
