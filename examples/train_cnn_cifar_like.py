"""Distributed CNN training with sparse communication (Case 1 of the paper).

Trains the scaled-down VGG-16 on the synthetic CIFAR-10 stand-in with
data-parallel synchronous SGD over a simulated 8-worker cluster, comparing
SparDL against dense All-Reduce and Ok-Topk.  For each method it reports the
per-epoch accuracy together with the simulated wall-clock time (compute +
alpha-beta communication), i.e. a miniature version of the paper's Fig. 9.

Every configuration is one facade spec string handed to the trainer as a
factory — the trainer builds the synchroniser from the model, so spec
strings with schedules (``schedule=warmup:20``) and per-layer bucketing
(``buckets=layer``) need no extra plumbing.

Run with::

    python examples/train_cnn_cifar_like.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.api import make_factory
from repro.comm import ETHERNET, SimulatedCluster
from repro.training import DistributedTrainer, TrainerConfig, get_case

NUM_WORKERS = 8
EPOCHS = 6
SAMPLES = 240


def train_with(spec: str):
    case = get_case(1)  # VGG-16 on CIFAR-10 (synthetic stand-in)
    train_set, test_set = case.build_datasets(num_samples=SAMPLES, seed=0)
    cluster = SimulatedCluster(NUM_WORKERS)
    trainer = DistributedTrainer(
        cluster, make_factory(spec), case.build_model, train_set, test_set,
        config=TrainerConfig(batch_size=case.batch_size, learning_rate=case.learning_rate,
                             momentum=case.momentum, seed=0),
        network=ETHERNET, compute_profile=case.compute_profile, case_name=case.name,
    )
    history = trainer.train(EPOCHS)
    return history


def main() -> None:
    case = get_case(1)
    print(f"Training {case.describe()} on {NUM_WORKERS} simulated workers")
    print(f"model parameters: {case.build_model(0).num_parameters()} "
          f"(stand-in for the paper's {case.compute_profile.paper_parameters/1e6:.1f}M)")
    print()

    runs = {
        "Dense All-Reduce": train_with("dense"),
        "Ok-Topk (k/n=1%)": train_with("ok-topk?density=0.01"),
        "SparDL (k/n=1%)": train_with("spardl?density=0.01"),
        "SparDL (B-SAG d=4)": train_with("spardl?density=0.01&teams=4&sag=bsag"),
        "SparDL (DGC warm-up)": train_with("spardl?density=0.01&schedule=warmup:20"),
    }

    rows = []
    for name, history in runs.items():
        rows.append((
            name,
            history.total_time,
            history.total_communication_time,
            history.final_eval_loss,
            history.final_metric,
        ))
    rows.sort(key=lambda row: row[1])
    print(format_table(
        ["method", "simulated train time (s)", "comm time (s)", "final loss", "final accuracy"],
        rows, title=f"VGG-16-like CNN, {EPOCHS} epochs, {NUM_WORKERS} workers"))

    print()
    print("Accuracy per epoch (simulated time in seconds):")
    for name, history in runs.items():
        curve = history.metric_curve()
        points = ", ".join(f"{t:.1f}s -> {m:.3f}" for t, m in zip(curve["time"], curve["metric"]))
        print(f"  {name:22s} {points}")


if __name__ == "__main__":
    main()
