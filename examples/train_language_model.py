"""Distributed language-model training with sparse communication (Case 6).

Trains the 2-layer LSTM language model on the synthetic PTB stand-in with
SparDL at several sparsity ratios and reports perplexity versus simulated
training time — a miniature of the paper's Fig. 16 trade-off between
communication savings and convergence.

Run with::

    python examples/train_language_model.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.api import make_factory
from repro.comm import ETHERNET, SimulatedCluster
from repro.nn import perplexity
from repro.training import DistributedTrainer, TrainerConfig, get_case

NUM_WORKERS = 6
EPOCHS = 6
SAMPLES = 240
RATIOS = (1.0, 1e-1, 1e-2, 1e-3)


def train_at_density(density: float):
    case = get_case(6)  # LSTM-PTB
    train_set, test_set = case.build_datasets(num_samples=SAMPLES, seed=0)
    cluster = SimulatedCluster(NUM_WORKERS)
    if density >= 1.0:
        factory = make_factory("dense")
    else:
        factory = make_factory(f"spardl?density={density:g}")
    trainer = DistributedTrainer(
        cluster, factory, case.build_model, train_set, test_set,
        config=TrainerConfig(batch_size=case.batch_size, learning_rate=case.learning_rate,
                             momentum=case.momentum, seed=0),
        network=ETHERNET, compute_profile=case.compute_profile, case_name=case.name,
    )
    return trainer.train(EPOCHS)


def main() -> None:
    case = get_case(6)
    print(f"Training {case.describe()} on {NUM_WORKERS} simulated workers")
    print()

    rows = []
    for density in RATIOS:
        history = train_at_density(density)
        label = "dense" if density >= 1.0 else f"SparDL k/n={density:g}"
        rows.append((
            label,
            history.total_time,
            history.total_communication_time,
            history.final_eval_loss,
            perplexity(history.final_eval_loss),
        ))
    print(format_table(
        ["configuration", "simulated train time (s)", "comm time (s)",
         "final loss", "final perplexity"],
        rows, title=f"LSTM language model, {EPOCHS} epochs, {NUM_WORKERS} workers"))

    print()
    print("Reading the table: shrinking k/n cuts the communication time with only")
    print("a modest perplexity penalty down to about k/n = 1e-2 .. 1e-3, after which")
    print("latency dominates and further sparsification stops paying off —")
    print("the same trade-off as the paper's Fig. 16.")


if __name__ == "__main__":
    main()
